(* Tests for the ATM interconnect: cells, CRC-32, AAL5 segmentation and
   reassembly, the banyan switch and the fabric timing model. *)

module Time = Cni_engine.Time
module Engine = Cni_engine.Engine
module Params = Cni_machine.Params
module Cell = Cni_atm.Cell
module Crc32 = Cni_atm.Crc32
module Aal5 = Cni_atm.Aal5
module Switch = Cni_atm.Switch
module Fabric = Cni_atm.Fabric

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let p = Params.default

(* ------------------------------------------------------------------ *)
(* Cells                                                               *)
(* ------------------------------------------------------------------ *)

let test_cell_sizes () =
  checki "header" 5 Cell.header_bytes;
  checki "payload" 48 Cell.payload_bytes;
  checki "total" 53 Cell.total_bytes

let test_cell_roundtrip () =
  let payload = Bytes.init 48 (fun i -> Char.chr (i * 5 mod 256)) in
  let c = Cell.make ~vpi:3 ~vci:0xBEEF ~last:true ~clp:true payload in
  let c' = Cell.decode (Cell.encode c) in
  checki "vpi" 3 c'.Cell.header.Cell.vpi;
  checki "vci" 0xBEEF c'.Cell.header.Cell.vci;
  checkb "last" true c'.Cell.header.Cell.last;
  checkb "clp" true c'.Cell.header.Cell.clp;
  checkb "payload" true (Bytes.equal payload c'.Cell.payload)

let test_cell_validation () =
  let short = Bytes.create 47 in
  Alcotest.check_raises "short payload"
    (Invalid_argument "Cell.make: payload must be exactly 48 bytes") (fun () ->
      ignore (Cell.make ~vpi:0 ~vci:0 ~last:false short));
  let ok = Bytes.create 48 in
  Alcotest.check_raises "vci range" (Invalid_argument "Cell.make: vci out of range") (fun () ->
      ignore (Cell.make ~vpi:0 ~vci:0x10000 ~last:false ok));
  Alcotest.check_raises "decode length" (Invalid_argument "Cell.decode: need 53 bytes")
    (fun () -> ignore (Cell.decode (Bytes.create 52)))

let cell_roundtrip_qc =
  QCheck.Test.make ~name:"cell encode/decode roundtrip" ~count:200
    QCheck.(quad (int_bound 255) (int_bound 0xFFFF) bool bool)
    (fun (vpi, vci, last, clp) ->
      let payload = Bytes.make 48 'z' in
      let c = Cell.make ~vpi ~vci ~last ~clp payload in
      let c' = Cell.decode (Cell.encode c) in
      c'.Cell.header = c.Cell.header && Bytes.equal c'.Cell.payload payload)

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

let test_crc32_known_vector () =
  (* the classic check value: CRC-32("123456789") = 0xCBF43926 *)
  let b = Bytes.of_string "123456789" in
  check Alcotest.int32 "check value" 0xCBF43926l (Crc32.digest b ~pos:0 ~len:9)

let test_crc32_incremental () =
  let b = Bytes.of_string "hello world" in
  let whole = Crc32.digest b ~pos:0 ~len:11 in
  let part = Crc32.update Crc32.init b ~pos:0 ~len:5 in
  let part = Crc32.update part b ~pos:5 ~len:6 in
  check Alcotest.int32 "incremental = whole" whole (Crc32.finish part)

(* ------------------------------------------------------------------ *)
(* AAL5                                                                *)
(* ------------------------------------------------------------------ *)

let test_aal5_roundtrip () =
  let frame = Bytes.init 1000 (fun i -> Char.chr (i mod 251)) in
  let cells = Aal5.segment ~vpi:1 ~vci:42 frame in
  checki "cell count" (Aal5.cell_count 1000) (List.length cells);
  let r = Aal5.Reassembler.create () in
  let frames = List.filter_map (Aal5.Reassembler.push r) cells in
  (match frames with
  | [ f ] -> checkb "identical" true (Bytes.equal f frame)
  | _ -> Alcotest.fail "expected exactly one frame");
  checki "nothing pending" 0 (Aal5.Reassembler.pending_cells r)

let test_aal5_empty_frame () =
  let cells = Aal5.segment ~vpi:0 ~vci:1 Bytes.empty in
  checki "one cell" 1 (List.length cells);
  let r = Aal5.Reassembler.create () in
  match List.filter_map (Aal5.Reassembler.push r) cells with
  | [ f ] -> checki "zero length" 0 (Bytes.length f)
  | _ -> Alcotest.fail "expected one frame"

let test_aal5_last_bit () =
  let frame = Bytes.make 100 'a' in
  let cells = Aal5.segment ~vpi:0 ~vci:1 frame in
  let rec split = function
    | [] -> Alcotest.fail "no cells"
    | [ last ] -> ([], last)
    | c :: rest ->
        let init, last = split rest in
        (c :: init, last)
  in
  let init, last = split cells in
  List.iter (fun (c : Cell.t) -> checkb "not last" false c.Cell.header.Cell.last) init;
  checkb "final cell marked" true last.Cell.header.Cell.last

let test_aal5_corruption_detected () =
  let frame = Bytes.make 100 'q' in
  let cells = Aal5.segment ~vpi:0 ~vci:1 frame in
  let corrupted =
    List.mapi
      (fun i (c : Cell.t) ->
        if i = 0 then begin
          let pl = Bytes.copy c.Cell.payload in
          Bytes.set pl 10 '!';
          Cell.make ~vpi:0 ~vci:1 ~last:c.Cell.header.Cell.last pl
        end
        else c)
      cells
  in
  let r = Aal5.Reassembler.create () in
  Alcotest.check_raises "CRC mismatch" (Aal5.Reassembly_error "CRC mismatch") (fun () ->
      List.iter (fun c -> ignore (Aal5.Reassembler.push r c)) corrupted)

let test_aal5_push_result_crc_mismatch () =
  let frame = Bytes.make 100 'q' in
  let corrupted =
    List.mapi
      (fun i (c : Cell.t) ->
        if i = 0 then begin
          let pl = Bytes.copy c.Cell.payload in
          Bytes.set pl 10 '!';
          Cell.make ~vpi:0 ~vci:1 ~last:c.Cell.header.Cell.last pl
        end
        else c)
      (Aal5.segment ~vpi:0 ~vci:1 frame)
  in
  let r = Aal5.Reassembler.create () in
  let results = List.map (Aal5.Reassembler.push_result r) corrupted in
  (match List.rev results with
  | Error Aal5.Crc_mismatch :: mid ->
      List.iter (fun x -> checkb "mid-frame cells are Ok None" true (x = Ok None)) mid
  | _ -> Alcotest.fail "expected Error Crc_mismatch on the last cell");
  checki "error counted" 1 (Aal5.Reassembler.errors r);
  checki "no frame counted" 0 (Aal5.Reassembler.frames r);
  checki "buffer drained" 0 (Aal5.Reassembler.pending_cells r);
  (* the circuit stays usable: the next (good) frame reassembles *)
  let good = Bytes.make 64 'g' in
  let out =
    List.filter_map
      (fun c ->
        match Aal5.Reassembler.push_result r c with Ok f -> f | Error _ -> None)
      (Aal5.segment ~vpi:0 ~vci:1 good)
  in
  (match out with
  | [ f ] -> checkb "next frame intact" true (Bytes.equal f good)
  | _ -> Alcotest.fail "expected the next frame");
  checki "frame counted" 1 (Aal5.Reassembler.frames r)

let test_aal5_push_result_bad_length () =
  (* corrupt the trailer's length field (last 8 bytes of the final cell's
     payload, before padding adjustments: bytes 40-43 hold the length) *)
  let frame = Bytes.make 40 'L' in
  let cells = Aal5.segment ~vpi:0 ~vci:2 frame in
  let mangled =
    List.map
      (fun (c : Cell.t) ->
        if c.Cell.header.Cell.last then begin
          let pl = Bytes.copy c.Cell.payload in
          Bytes.set_int32_be pl 40 0x7FFFFFFFl;
          Cell.make ~vpi:0 ~vci:2 ~last:true pl
        end
        else c)
      cells
  in
  let r = Aal5.Reassembler.create () in
  let last_result = List.fold_left (fun _ c -> Aal5.Reassembler.push_result r c) (Ok None) mangled in
  checkb "bad length detected" true (last_result = Error Aal5.Bad_length);
  checki "error counted" 1 (Aal5.Reassembler.errors r)

let test_aal5_truncated_trailer () =
  (* a hand-built final cell shorter than the 8-byte trailer: only possible
     with unrestricted cell sizes (Table 5 variant), where a frame can end
     in a cell carrying fewer than 8 bytes *)
  let short : Cell.t =
    { Cell.header = { Cell.vpi = 0; vci = 3; last = true; clp = false };
      payload = Bytes.create 4 }
  in
  let r = Aal5.Reassembler.create () in
  checkb "truncated detected" true (Aal5.Reassembler.push_result r short = Error Aal5.Truncated);
  checki "error counted" 1 (Aal5.Reassembler.errors r);
  checki "buffer drained" 0 (Aal5.Reassembler.pending_cells r)

let test_aal5_demux_interleaved_vcs () =
  let fa = Bytes.make 150 'a' and fb = Bytes.make 90 'b' in
  let ca = Aal5.segment ~vpi:0 ~vci:10 fa and cb = Aal5.segment ~vpi:0 ~vci:20 fb in
  (* interleave the two circuits' cells cell-by-cell *)
  let rec interleave xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys -> x :: y :: interleave xs ys
  in
  let d = Aal5.Demux.create () in
  let out = List.filter_map (fun c ->
      match Aal5.Demux.push_result d c with Ok f -> f | Error _ -> None)
      (interleave ca cb)
  in
  (match List.sort compare (List.map fst out) with
  | [ 10; 20 ] -> ()
  | _ -> Alcotest.fail "expected one frame per circuit");
  List.iter
    (fun (vci, f) ->
      checkb "frame routed to its circuit intact" true
        (Bytes.equal f (if vci = 10 then fa else fb)))
    out;
  checki "vc 10 frames" 1 (Aal5.Demux.frames d ~vci:10);
  checki "vc 20 frames" 1 (Aal5.Demux.frames d ~vci:20);
  checki "vc 10 errors" 0 (Aal5.Demux.errors d ~vci:10);
  checki "nothing pending on 10" 0 (Aal5.Demux.pending_cells d ~vci:10)

let test_aal5_demux_error_isolated_to_vc () =
  (* a corrupted frame on one circuit must not disturb another circuit's
     in-flight frame *)
  let fa = Bytes.make 150 'a' and fb = Bytes.make 90 'b' in
  let ca =
    List.mapi
      (fun i (c : Cell.t) ->
        if i = 0 then begin
          let pl = Bytes.copy c.Cell.payload in
          Bytes.set pl 0 'X';
          Cell.make ~vpi:0 ~vci:10 ~last:c.Cell.header.Cell.last pl
        end
        else c)
      (Aal5.segment ~vpi:0 ~vci:10 fa)
  in
  let cb = Aal5.segment ~vpi:0 ~vci:20 fb in
  let rec interleave xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys -> x :: y :: interleave xs ys
  in
  let d = Aal5.Demux.create () in
  let good = ref [] and bad = ref [] in
  List.iter
    (fun c ->
      match Aal5.Demux.push_result d c with
      | Ok (Some (vci, f)) -> good := (vci, f) :: !good
      | Ok None -> ()
      | Error (vci, e) -> bad := (vci, e) :: !bad)
    (interleave ca cb);
  checkb "circuit 10 rejected" true (!bad = [ (10, Aal5.Crc_mismatch) ]);
  (match !good with
  | [ (20, f) ] -> checkb "circuit 20 unharmed" true (Bytes.equal f fb)
  | _ -> Alcotest.fail "expected circuit 20's frame");
  checki "per-VC error counter" 1 (Aal5.Demux.errors d ~vci:10);
  checki "clean circuit has no errors" 0 (Aal5.Demux.errors d ~vci:20)

let aal5_roundtrip_qc =
  QCheck.Test.make ~name:"AAL5 roundtrip for arbitrary frames" ~count:100
    QCheck.(string_of_size (Gen.int_bound 3000))
    (fun s ->
      let frame = Bytes.of_string s in
      let cells = Aal5.segment ~vpi:0 ~vci:9 frame in
      let r = Aal5.Reassembler.create () in
      match List.filter_map (Aal5.Reassembler.push r) cells with
      | [ f ] -> Bytes.equal f frame
      | _ -> false)

let aal5_cell_count_qc =
  QCheck.Test.make ~name:"cell_count covers payload + trailer" ~count:200
    QCheck.(int_bound 10_000)
    (fun len ->
      let cells = Aal5.cell_count len in
      (cells * 48) >= len + 8 && ((cells - 1) * 48) < len + 8 || (len = 0 && cells = 1))

let test_aal5_pending_cells () =
  let frame = Bytes.make 200 'p' in
  let cells = Aal5.segment ~vpi:0 ~vci:3 frame in
  let r = Aal5.Reassembler.create () in
  (match cells with
  | first :: _ ->
      ignore (Aal5.Reassembler.push r first);
      checki "one pending" 1 (Aal5.Reassembler.pending_cells r)
  | [] -> Alcotest.fail "no cells");
  List.iteri (fun i c -> if i > 0 then ignore (Aal5.Reassembler.push r c)) cells;
  checki "drained after last" 0 (Aal5.Reassembler.pending_cells r)

(* ------------------------------------------------------------------ *)
(* Switch                                                              *)
(* ------------------------------------------------------------------ *)

let test_switch_structure () =
  let sw = Switch.create ~ports:32 in
  checki "ports" 32 (Switch.ports sw);
  checki "stages" 5 (Switch.stages sw);
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Switch.create: ports must be a power of two >= 2") (fun () ->
      ignore (Switch.create ~ports:24))

let test_switch_routes_reach_destination () =
  let sw = Switch.create ~ports:32 in
  for src = 0 to 31 do
    for dst = 0 to 31 do
      let r = Switch.route sw ~src ~dst in
      checki "route ends at destination" dst r.(Array.length r - 1)
    done
  done

let test_switch_conflicts () =
  let sw = Switch.create ~ports:8 in
  (* same destination always conflicts at the last stage *)
  checkb "same dst conflicts" true (Switch.conflict sw (0, 5) (1, 5));
  (* identity permutation routes are pairwise disjoint *)
  checki "identity non-blocking" 0
    (Switch.conflicts_in_permutation sw (Array.init 8 (fun i -> i)));
  (* the classic blocking example: bit-reversal style permutations block *)
  checkb "some permutation blocks" true
    (Switch.conflicts_in_permutation sw [| 0; 4; 1; 5; 2; 6; 3; 7 |] > 0)

let switch_conflict_symmetric =
  QCheck.Test.make ~name:"conflict is symmetric" ~count:300
    QCheck.(quad (int_bound 31) (int_bound 31) (int_bound 31) (int_bound 31))
    (fun (a, b, c, d) ->
      let sw = Switch.create ~ports:32 in
      Switch.conflict sw (a, b) (c, d) = Switch.conflict sw (c, d) (a, b))

(* ------------------------------------------------------------------ *)
(* Fabric                                                              *)
(* ------------------------------------------------------------------ *)

let mk_packet ~src ~dst ~bytes payload =
  {
    Fabric.src;
    dst;
    vci = src;
    header = Bytes.make 16 'h';
    body_bytes = bytes - 16;
    payload;
    crc_ok = true;
  }

let test_fabric_delivery_and_latency () =
  let eng = Engine.create () in
  let fab = Fabric.create eng p ~nodes:4 in
  let arrival = ref Time.zero in
  Fabric.set_receiver fab ~node:2 (fun _ -> arrival := Engine.now eng);
  Fabric.send fab (mk_packet ~src:0 ~dst:2 ~bytes:64 "hello");
  Engine.run eng;
  let expected = Fabric.min_latency p ~bytes:64 in
  checki "uncontended latency = min_latency" (Time.to_ps expected) (Time.to_ps !arrival)

let test_fabric_wire_accounting () =
  let pkt = mk_packet ~src:0 ~dst:1 ~bytes:100 () in
  (* 100 + 8 trailer = 108 -> 3 cells -> 159 wire bytes *)
  checki "cells" 3 (Fabric.packet_cells p pkt);
  checki "wire bytes" (3 * 53) (Fabric.wire_bytes p pkt);
  let unrestricted = { p with Params.cell_payload_bytes = 1 lsl 26 } in
  checki "unrestricted single cell" 1 (Fabric.packet_cells unrestricted pkt);
  checki "unrestricted wire = payload+trailer+header" (100 + 8 + 5)
    (Fabric.wire_bytes unrestricted pkt)

let test_fabric_fifo_per_pair () =
  let eng = Engine.create () in
  let fab = Fabric.create eng p ~nodes:2 in
  let got = ref [] in
  Fabric.set_receiver fab ~node:1 (fun pkt -> got := pkt.Fabric.payload :: !got);
  for i = 1 to 5 do
    Fabric.send fab (mk_packet ~src:0 ~dst:1 ~bytes:64 i)
  done;
  Engine.run eng;
  check (Alcotest.list Alcotest.int) "in order" [ 1; 2; 3; 4; 5 ] (List.rev !got)

let test_fabric_ingress_contention () =
  let eng = Engine.create () in
  let fab = Fabric.create eng p ~nodes:3 in
  let arrivals = ref [] in
  Fabric.set_receiver fab ~node:2 (fun pkt ->
      arrivals := (pkt.Fabric.src, Engine.now eng) :: !arrivals);
  (* two senders, one destination: receptions must not overlap *)
  Fabric.send fab (mk_packet ~src:0 ~dst:2 ~bytes:4096 ());
  Fabric.send fab (mk_packet ~src:1 ~dst:2 ~bytes:4096 ());
  Engine.run eng;
  match List.rev !arrivals with
  | [ (_, t1); (_, t2) ] ->
      let ser = Time.to_ps (Fabric.min_latency p ~bytes:4096) in
      checkb "second delayed by contention" true (Time.to_ps t2 - Time.to_ps t1 > ser / 2)
  | _ -> Alcotest.fail "expected two arrivals"

let test_fabric_rejects_bad_addresses () =
  let eng = Engine.create () in
  let fab = Fabric.create eng p ~nodes:2 in
  Alcotest.check_raises "src = dst" (Invalid_argument "Fabric.send: src = dst") (fun () ->
      Fabric.send fab (mk_packet ~src:1 ~dst:1 ~bytes:64 ()));
  Alcotest.check_raises "dst out of range" (Invalid_argument "Fabric.send: dst out of range")
    (fun () -> Fabric.send fab (mk_packet ~src:0 ~dst:5 ~bytes:64 ()))

let test_fabric_min_latency_monotone () =
  let prev = ref Time.zero in
  List.iter
    (fun b ->
      let l = Fabric.min_latency p ~bytes:b in
      checkb "monotone in size" true (l >= !prev);
      prev := l)
    [ 0; 64; 512; 2048; 8192 ]

let test_fabric_stats () =
  let eng = Engine.create () in
  let fab = Fabric.create eng p ~nodes:2 in
  Fabric.set_receiver fab ~node:1 (fun _ -> ());
  Fabric.send fab (mk_packet ~src:0 ~dst:1 ~bytes:100 ());
  Engine.run eng;
  let s = Fabric.stats fab in
  checki "packets" 1 s.Fabric.packets;
  checki "cells" 3 s.Fabric.cells;
  checki "wire bytes" 159 s.Fabric.wire_bytes;
  checki "dropped" 0 s.Fabric.dropped

let test_fabric_unrestricted_faster () =
  let latency params =
    let eng = Engine.create () in
    let fab = Fabric.create eng params ~nodes:2 in
    let t = ref Time.zero in
    Fabric.set_receiver fab ~node:1 (fun _ -> t := Engine.now eng);
    Fabric.send fab (mk_packet ~src:0 ~dst:1 ~bytes:4096 ());
    Engine.run eng;
    !t
  in
  let restricted = latency p in
  let unrestricted = latency { p with Params.cell_payload_bytes = 1 lsl 26 } in
  checkb "no framing overhead is faster" true (unrestricted < restricted)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "atm"
    [
      ( "cell",
        [
          Alcotest.test_case "sizes" `Quick test_cell_sizes;
          Alcotest.test_case "roundtrip" `Quick test_cell_roundtrip;
          Alcotest.test_case "validation" `Quick test_cell_validation;
          qc cell_roundtrip_qc;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vector" `Quick test_crc32_known_vector;
          Alcotest.test_case "incremental" `Quick test_crc32_incremental;
        ] );
      ( "aal5",
        [
          Alcotest.test_case "roundtrip" `Quick test_aal5_roundtrip;
          Alcotest.test_case "empty frame" `Quick test_aal5_empty_frame;
          Alcotest.test_case "last-cell marking" `Quick test_aal5_last_bit;
          Alcotest.test_case "corruption detected" `Quick test_aal5_corruption_detected;
          Alcotest.test_case "pending cells" `Quick test_aal5_pending_cells;
          Alcotest.test_case "push_result CRC mismatch" `Quick
            test_aal5_push_result_crc_mismatch;
          Alcotest.test_case "push_result bad length" `Quick test_aal5_push_result_bad_length;
          Alcotest.test_case "truncated trailer" `Quick test_aal5_truncated_trailer;
          Alcotest.test_case "demux interleaved VCs" `Quick test_aal5_demux_interleaved_vcs;
          Alcotest.test_case "demux isolates errors per VC" `Quick
            test_aal5_demux_error_isolated_to_vc;
          qc aal5_roundtrip_qc;
          qc aal5_cell_count_qc;
        ] );
      ( "switch",
        [
          Alcotest.test_case "structure" `Quick test_switch_structure;
          Alcotest.test_case "routes reach destination" `Quick
            test_switch_routes_reach_destination;
          Alcotest.test_case "conflicts" `Quick test_switch_conflicts;
          qc switch_conflict_symmetric;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "delivery latency" `Quick test_fabric_delivery_and_latency;
          Alcotest.test_case "wire accounting" `Quick test_fabric_wire_accounting;
          Alcotest.test_case "FIFO per src-dst pair" `Quick test_fabric_fifo_per_pair;
          Alcotest.test_case "ingress contention" `Quick test_fabric_ingress_contention;
          Alcotest.test_case "address validation" `Quick test_fabric_rejects_bad_addresses;
          Alcotest.test_case "min_latency monotone" `Quick test_fabric_min_latency_monotone;
          Alcotest.test_case "stats" `Quick test_fabric_stats;
          Alcotest.test_case "unrestricted cells faster" `Quick test_fabric_unrestricted_faster;
        ] );
    ]
