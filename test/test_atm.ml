(* Tests for the ATM interconnect: cells, CRC-32, AAL5 segmentation and
   reassembly, the banyan switch and the fabric timing model. *)

module Time = Cni_engine.Time
module Engine = Cni_engine.Engine
module Params = Cni_machine.Params
module Cell = Cni_atm.Cell
module Crc32 = Cni_atm.Crc32
module Aal5 = Cni_atm.Aal5
module Switch = Cni_atm.Switch
module Topology = Cni_atm.Topology
module Fabric = Cni_atm.Fabric
module Faults = Cni_atm.Faults

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let p = Params.default

(* ------------------------------------------------------------------ *)
(* Cells                                                               *)
(* ------------------------------------------------------------------ *)

let test_cell_sizes () =
  checki "header" 5 Cell.header_bytes;
  checki "payload" 48 Cell.payload_bytes;
  checki "total" 53 Cell.total_bytes

let test_cell_roundtrip () =
  let payload = Bytes.init 48 (fun i -> Char.chr (i * 5 mod 256)) in
  let c = Cell.make ~vpi:3 ~vci:0xBEEF ~last:true ~clp:true payload in
  let c' = Cell.decode (Cell.encode c) in
  checki "vpi" 3 c'.Cell.header.Cell.vpi;
  checki "vci" 0xBEEF c'.Cell.header.Cell.vci;
  checkb "last" true c'.Cell.header.Cell.last;
  checkb "clp" true c'.Cell.header.Cell.clp;
  checkb "payload" true (Bytes.equal payload c'.Cell.payload)

let test_cell_validation () =
  let short = Bytes.create 47 in
  Alcotest.check_raises "short payload"
    (Invalid_argument "Cell.make: payload must be exactly 48 bytes") (fun () ->
      ignore (Cell.make ~vpi:0 ~vci:0 ~last:false short));
  let ok = Bytes.create 48 in
  Alcotest.check_raises "vci range" (Invalid_argument "Cell.make: vci out of range") (fun () ->
      ignore (Cell.make ~vpi:0 ~vci:0x10000 ~last:false ok));
  Alcotest.check_raises "decode length" (Invalid_argument "Cell.decode: need 53 bytes")
    (fun () -> ignore (Cell.decode (Bytes.create 52)))

let cell_roundtrip_qc =
  QCheck.Test.make ~name:"cell encode/decode roundtrip" ~count:200
    QCheck.(quad (int_bound 255) (int_bound 0xFFFF) bool bool)
    (fun (vpi, vci, last, clp) ->
      let payload = Bytes.make 48 'z' in
      let c = Cell.make ~vpi ~vci ~last ~clp payload in
      let c' = Cell.decode (Cell.encode c) in
      c'.Cell.header = c.Cell.header && Bytes.equal c'.Cell.payload payload)

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

let test_crc32_known_vector () =
  (* the classic check value: CRC-32("123456789") = 0xCBF43926 *)
  let b = Bytes.of_string "123456789" in
  check Alcotest.int32 "check value" 0xCBF43926l (Crc32.digest b ~pos:0 ~len:9)

let test_crc32_incremental () =
  let b = Bytes.of_string "hello world" in
  let whole = Crc32.digest b ~pos:0 ~len:11 in
  let part = Crc32.update Crc32.init b ~pos:0 ~len:5 in
  let part = Crc32.update part b ~pos:5 ~len:6 in
  check Alcotest.int32 "incremental = whole" whole (Crc32.finish part)

(* ------------------------------------------------------------------ *)
(* AAL5                                                                *)
(* ------------------------------------------------------------------ *)

let test_aal5_roundtrip () =
  let frame = Bytes.init 1000 (fun i -> Char.chr (i mod 251)) in
  let cells = Aal5.segment ~vpi:1 ~vci:42 frame in
  checki "cell count" (Aal5.cell_count 1000) (List.length cells);
  let r = Aal5.Reassembler.create () in
  let frames = List.filter_map (Aal5.Reassembler.push r) cells in
  (match frames with
  | [ f ] -> checkb "identical" true (Bytes.equal f frame)
  | _ -> Alcotest.fail "expected exactly one frame");
  checki "nothing pending" 0 (Aal5.Reassembler.pending_cells r)

let test_aal5_empty_frame () =
  let cells = Aal5.segment ~vpi:0 ~vci:1 Bytes.empty in
  checki "one cell" 1 (List.length cells);
  let r = Aal5.Reassembler.create () in
  match List.filter_map (Aal5.Reassembler.push r) cells with
  | [ f ] -> checki "zero length" 0 (Bytes.length f)
  | _ -> Alcotest.fail "expected one frame"

let test_aal5_last_bit () =
  let frame = Bytes.make 100 'a' in
  let cells = Aal5.segment ~vpi:0 ~vci:1 frame in
  let rec split = function
    | [] -> Alcotest.fail "no cells"
    | [ last ] -> ([], last)
    | c :: rest ->
        let init, last = split rest in
        (c :: init, last)
  in
  let init, last = split cells in
  List.iter (fun (c : Cell.t) -> checkb "not last" false c.Cell.header.Cell.last) init;
  checkb "final cell marked" true last.Cell.header.Cell.last

let test_aal5_corruption_detected () =
  let frame = Bytes.make 100 'q' in
  let cells = Aal5.segment ~vpi:0 ~vci:1 frame in
  let corrupted =
    List.mapi
      (fun i (c : Cell.t) ->
        if i = 0 then begin
          let pl = Bytes.copy c.Cell.payload in
          Bytes.set pl 10 '!';
          Cell.make ~vpi:0 ~vci:1 ~last:c.Cell.header.Cell.last pl
        end
        else c)
      cells
  in
  let r = Aal5.Reassembler.create () in
  Alcotest.check_raises "CRC mismatch" (Aal5.Reassembly_error "CRC mismatch") (fun () ->
      List.iter (fun c -> ignore (Aal5.Reassembler.push r c)) corrupted)

let test_aal5_push_result_crc_mismatch () =
  let frame = Bytes.make 100 'q' in
  let corrupted =
    List.mapi
      (fun i (c : Cell.t) ->
        if i = 0 then begin
          let pl = Bytes.copy c.Cell.payload in
          Bytes.set pl 10 '!';
          Cell.make ~vpi:0 ~vci:1 ~last:c.Cell.header.Cell.last pl
        end
        else c)
      (Aal5.segment ~vpi:0 ~vci:1 frame)
  in
  let r = Aal5.Reassembler.create () in
  let results = List.map (Aal5.Reassembler.push_result r) corrupted in
  (match List.rev results with
  | Error Aal5.Crc_mismatch :: mid ->
      List.iter (fun x -> checkb "mid-frame cells are Ok None" true (x = Ok None)) mid
  | _ -> Alcotest.fail "expected Error Crc_mismatch on the last cell");
  checki "error counted" 1 (Aal5.Reassembler.errors r);
  checki "no frame counted" 0 (Aal5.Reassembler.frames r);
  checki "buffer drained" 0 (Aal5.Reassembler.pending_cells r);
  (* the circuit stays usable: the next (good) frame reassembles *)
  let good = Bytes.make 64 'g' in
  let out =
    List.filter_map
      (fun c ->
        match Aal5.Reassembler.push_result r c with Ok f -> f | Error _ -> None)
      (Aal5.segment ~vpi:0 ~vci:1 good)
  in
  (match out with
  | [ f ] -> checkb "next frame intact" true (Bytes.equal f good)
  | _ -> Alcotest.fail "expected the next frame");
  checki "frame counted" 1 (Aal5.Reassembler.frames r)

let test_aal5_push_result_bad_length () =
  (* corrupt the trailer's length field (last 8 bytes of the final cell's
     payload, before padding adjustments: bytes 40-43 hold the length) *)
  let frame = Bytes.make 40 'L' in
  let cells = Aal5.segment ~vpi:0 ~vci:2 frame in
  let mangled =
    List.map
      (fun (c : Cell.t) ->
        if c.Cell.header.Cell.last then begin
          let pl = Bytes.copy c.Cell.payload in
          Bytes.set_int32_be pl 40 0x7FFFFFFFl;
          Cell.make ~vpi:0 ~vci:2 ~last:true pl
        end
        else c)
      cells
  in
  let r = Aal5.Reassembler.create () in
  let last_result = List.fold_left (fun _ c -> Aal5.Reassembler.push_result r c) (Ok None) mangled in
  checkb "bad length detected" true (last_result = Error Aal5.Bad_length);
  checki "error counted" 1 (Aal5.Reassembler.errors r)

let test_aal5_truncated_trailer () =
  (* a hand-built final cell shorter than the 8-byte trailer: only possible
     with unrestricted cell sizes (Table 5 variant), where a frame can end
     in a cell carrying fewer than 8 bytes *)
  let short : Cell.t =
    { Cell.header = { Cell.vpi = 0; vci = 3; last = true; clp = false };
      payload = Bytes.create 4 }
  in
  let r = Aal5.Reassembler.create () in
  checkb "truncated detected" true (Aal5.Reassembler.push_result r short = Error Aal5.Truncated);
  checki "error counted" 1 (Aal5.Reassembler.errors r);
  checki "buffer drained" 0 (Aal5.Reassembler.pending_cells r)

let test_aal5_demux_interleaved_vcs () =
  let fa = Bytes.make 150 'a' and fb = Bytes.make 90 'b' in
  let ca = Aal5.segment ~vpi:0 ~vci:10 fa and cb = Aal5.segment ~vpi:0 ~vci:20 fb in
  (* interleave the two circuits' cells cell-by-cell *)
  let rec interleave xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys -> x :: y :: interleave xs ys
  in
  let d = Aal5.Demux.create () in
  let out = List.filter_map (fun c ->
      match Aal5.Demux.push_result d c with Ok f -> f | Error _ -> None)
      (interleave ca cb)
  in
  (match List.sort compare (List.map fst out) with
  | [ 10; 20 ] -> ()
  | _ -> Alcotest.fail "expected one frame per circuit");
  List.iter
    (fun (vci, f) ->
      checkb "frame routed to its circuit intact" true
        (Bytes.equal f (if vci = 10 then fa else fb)))
    out;
  checki "vc 10 frames" 1 (Aal5.Demux.frames d ~vci:10);
  checki "vc 20 frames" 1 (Aal5.Demux.frames d ~vci:20);
  checki "vc 10 errors" 0 (Aal5.Demux.errors d ~vci:10);
  checki "nothing pending on 10" 0 (Aal5.Demux.pending_cells d ~vci:10)

let test_aal5_demux_error_isolated_to_vc () =
  (* a corrupted frame on one circuit must not disturb another circuit's
     in-flight frame *)
  let fa = Bytes.make 150 'a' and fb = Bytes.make 90 'b' in
  let ca =
    List.mapi
      (fun i (c : Cell.t) ->
        if i = 0 then begin
          let pl = Bytes.copy c.Cell.payload in
          Bytes.set pl 0 'X';
          Cell.make ~vpi:0 ~vci:10 ~last:c.Cell.header.Cell.last pl
        end
        else c)
      (Aal5.segment ~vpi:0 ~vci:10 fa)
  in
  let cb = Aal5.segment ~vpi:0 ~vci:20 fb in
  let rec interleave xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys -> x :: y :: interleave xs ys
  in
  let d = Aal5.Demux.create () in
  let good = ref [] and bad = ref [] in
  List.iter
    (fun c ->
      match Aal5.Demux.push_result d c with
      | Ok (Some (vci, f)) -> good := (vci, f) :: !good
      | Ok None -> ()
      | Error (vci, e) -> bad := (vci, e) :: !bad)
    (interleave ca cb);
  checkb "circuit 10 rejected" true (!bad = [ (10, Aal5.Crc_mismatch) ]);
  (match !good with
  | [ (20, f) ] -> checkb "circuit 20 unharmed" true (Bytes.equal f fb)
  | _ -> Alcotest.fail "expected circuit 20's frame");
  checki "per-VC error counter" 1 (Aal5.Demux.errors d ~vci:10);
  checki "clean circuit has no errors" 0 (Aal5.Demux.errors d ~vci:20)

let aal5_roundtrip_qc =
  QCheck.Test.make ~name:"AAL5 roundtrip for arbitrary frames" ~count:100
    QCheck.(string_of_size (Gen.int_bound 3000))
    (fun s ->
      let frame = Bytes.of_string s in
      let cells = Aal5.segment ~vpi:0 ~vci:9 frame in
      let r = Aal5.Reassembler.create () in
      match List.filter_map (Aal5.Reassembler.push r) cells with
      | [ f ] -> Bytes.equal f frame
      | _ -> false)

let aal5_cell_count_qc =
  QCheck.Test.make ~name:"cell_count covers payload + trailer" ~count:200
    QCheck.(int_bound 10_000)
    (fun len ->
      let cells = Aal5.cell_count len in
      (cells * 48) >= len + 8 && ((cells - 1) * 48) < len + 8 || (len = 0 && cells = 1))

let test_aal5_pending_cells () =
  let frame = Bytes.make 200 'p' in
  let cells = Aal5.segment ~vpi:0 ~vci:3 frame in
  let r = Aal5.Reassembler.create () in
  (match cells with
  | first :: _ ->
      ignore (Aal5.Reassembler.push r first);
      checki "one pending" 1 (Aal5.Reassembler.pending_cells r)
  | [] -> Alcotest.fail "no cells");
  List.iteri (fun i c -> if i > 0 then ignore (Aal5.Reassembler.push r c)) cells;
  checki "drained after last" 0 (Aal5.Reassembler.pending_cells r)

(* ------------------------------------------------------------------ *)
(* Switch                                                              *)
(* ------------------------------------------------------------------ *)

let test_switch_structure () =
  let sw = Switch.create ~ports:32 in
  checki "ports" 32 (Switch.ports sw);
  checki "stages" 5 (Switch.stages sw);
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Switch.create: ports must be a power of two >= 2") (fun () ->
      ignore (Switch.create ~ports:24))

let test_switch_routes_reach_destination () =
  let sw = Switch.create ~ports:32 in
  for src = 0 to 31 do
    for dst = 0 to 31 do
      let r = Switch.route sw ~src ~dst in
      checki "route ends at destination" dst r.(Array.length r - 1)
    done
  done

let test_switch_conflicts () =
  let sw = Switch.create ~ports:8 in
  (* same destination always conflicts at the last stage *)
  checkb "same dst conflicts" true (Switch.conflict sw (0, 5) (1, 5));
  (* identity permutation routes are pairwise disjoint *)
  checki "identity non-blocking" 0
    (Switch.conflicts_in_permutation sw (Array.init 8 (fun i -> i)));
  (* the classic blocking example: bit-reversal style permutations block *)
  checkb "some permutation blocks" true
    (Switch.conflicts_in_permutation sw [| 0; 4; 1; 5; 2; 6; 3; 7 |] > 0)

let switch_conflict_symmetric =
  QCheck.Test.make ~name:"conflict is symmetric" ~count:300
    QCheck.(quad (int_bound 31) (int_bound 31) (int_bound 31) (int_bound 31))
    (fun (a, b, c, d) ->
      let sw = Switch.create ~ports:32 in
      Switch.conflict sw (a, b) (c, d) = Switch.conflict sw (c, d) (a, b))

(* Each stage of an omega route perfect-shuffles the incoming wire and then
   exchanges (at most) the bottom bit, setting it to the routed destination
   bit — so consecutive hops may differ only in that exchanged bit, and the
   final hop must land on [dst]. *)
let switch_route_exchanged_bit =
  QCheck.Test.make ~name:"route hops differ only in the exchanged bit" ~count:500
    QCheck.(pair (int_bound 31) (int_bound 31))
    (fun (src, dst) ->
      let sw = Switch.create ~ports:32 in
      let k = Switch.stages sw in
      let mask = Switch.ports sw - 1 in
      let r = Switch.route sw ~src ~dst in
      let ok = ref (Array.length r = k && r.(k - 1) = dst) in
      let prev = ref src in
      Array.iteri
        (fun s w ->
          let shuffled = ((!prev lsl 1) lor (!prev lsr (k - 1))) land mask in
          (* differs from the shuffled wire only in bit 0... *)
          if (w lxor shuffled) land lnot 1 <> 0 then ok := false;
          (* ...and that bit is the routed destination bit for this stage *)
          if w land 1 <> (dst lsr (k - 1 - s)) land 1 then ok := false;
          prev := w)
        r;
      !ok)

let switch_conflict_reflexive =
  QCheck.Test.make ~name:"conflict is reflexive on shared stages" ~count:300
    QCheck.(triple (int_bound 31) (int_bound 31) (int_bound 31))
    (fun (s1, s2, d) ->
      let sw = Switch.create ~ports:32 in
      (* a route always conflicts with itself, and any two routes to the
         same destination share at least the final-stage wire *)
      Switch.conflict sw (s1, d) (s1, d) && Switch.conflict sw (s1, d) (s2, d))

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let test_topology_single () =
  let t = Topology.single ~nodes:8 in
  checki "one switch" 1 (Topology.switch_count t);
  checki "ports = nodes" 8 (Topology.switch_ports t 0);
  checki "links = host links" 8 (Topology.link_count t);
  checki "max hops" 1 (Topology.max_hops t);
  (match Topology.route t ~src:2 ~dst:5 with
  | [| { Topology.h_switch = 0; h_in = 2; h_out = 5 } |] -> ()
  | _ -> Alcotest.fail "single route should be one hop through switch 0");
  Alcotest.check_raises "src = dst" (Invalid_argument "Topology.route: src = dst") (fun () ->
      ignore (Topology.route t ~src:3 ~dst:3))

let test_topology_fat_tree_structure () =
  (* 64 nodes, radix 16: 8 hosts per leaf -> 8 leaves, 8 spines *)
  let t = Topology.fat_tree ~leaf_radix:16 ~nodes:64 () in
  checki "switches = leaves + spines" 16 (Topology.switch_count t);
  checki "leaf ports = down + up" 16 (Topology.switch_ports t 0);
  checki "spine ports = one per leaf" 8 (Topology.switch_ports t 8);
  checki "links = hosts + leaf-spine mesh" (64 + (8 * 8)) (Topology.link_count t);
  checki "max hops" 3 (Topology.max_hops t);
  (* same-leaf traffic never leaves the leaf; cross-leaf goes up-over-down *)
  checki "same leaf is one hop" 1 (Topology.hops t ~src:0 ~dst:7);
  checki "cross leaf is three hops" 3 (Topology.hops t ~src:0 ~dst:63);
  let r = Topology.route t ~src:0 ~dst:63 in
  checki "starts at src leaf" 0 r.(0).Topology.h_switch;
  checkb "middle hop is a spine" true (r.(1).Topology.h_switch >= 8);
  checki "ends at dst leaf" 7 r.(2).Topology.h_switch;
  checki "delivered on dst host port" (63 mod 8) r.(2).Topology.h_out

let test_topology_fat_tree_reachability () =
  let t = Topology.fat_tree ~leaf_radix:4 ~nodes:8 () in
  for src = 0 to 7 do
    for dst = 0 to 7 do
      if src <> dst then begin
        let r = Topology.route t ~src ~dst in
        checkb "within diameter" true (Array.length r <= Topology.max_hops t);
        let final = r.(Array.length r - 1) in
        (* the last hop leaves on the destination's own leaf port *)
        checki "lands on dst leaf" (dst / 2) final.Topology.h_switch;
        checki "lands on dst port" (dst mod 2) final.Topology.h_out
      end
    done
  done

let test_topology_torus_structure () =
  check
    (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)
    "auto dims 64" (4, 4, 4) (Topology.auto_dims 64);
  check
    (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)
    "auto dims 12" (2, 2, 3) (Topology.auto_dims 12);
  let t = Topology.torus ~nodes:64 () in
  checki "router per node" 64 (Topology.switch_count t);
  checki "host + 6 ring ports" 7 (Topology.switch_ports t 0);
  checki "links = hosts + 3 rings" (64 + (3 * 64)) (Topology.link_count t);
  checki "diameter hops" (1 + 2 + 2 + 2) (Topology.max_hops t)

let test_topology_torus_dimension_order () =
  let t = Topology.torus ~dims:(4, 4, 4) ~nodes:64 () in
  (* dimension-order routing is deadlock-free because corrections never go
     back to an earlier dimension: the port used at each hop must belong to
     a dimension >= the previous hop's, and each route ends on the
     destination's host port *)
  let dim_of_port port = if port = 0 then 3 else (port - 1) / 2 in
  for src = 0 to 63 do
    for dst = 0 to 63 do
      if src <> dst then begin
        let r = Topology.route t ~src ~dst in
        checkb "within diameter" true (Array.length r <= Topology.max_hops t);
        let final = r.(Array.length r - 1) in
        checki "ends at dst router" dst final.Topology.h_switch;
        checki "delivered on host port" 0 final.Topology.h_out;
        let last_dim = ref (-1) in
        Array.iter
          (fun { Topology.h_out; _ } ->
            let d = dim_of_port h_out in
            checkb "dimension order is monotone" true (d >= !last_dim);
            last_dim := d)
          r
      end
    done
  done;
  (* shorter way around the ring: 0 -> 3 in x is one -x hop, not three +x *)
  checki "wraparound is used" 2 (Topology.hops t ~src:0 ~dst:3)

let test_topology_validate () =
  let err k ~nodes =
    match Topology.validate k ~nodes with Ok () -> Alcotest.fail "expected error" | Error m -> m
  in
  checkb "odd radix rejected" true
    (err (Topology.Fat_tree { leaf_radix = 7 }) ~nodes:8 <> "");
  checkb "bad torus volume rejected" true
    (err (Topology.Torus { dims = Some (4, 4, 4) }) ~nodes:60 <> "");
  checkb "non-positive nodes rejected" true (err Topology.Single ~nodes:0 <> "");
  (match Topology.validate (Topology.Torus { dims = None }) ~nodes:60 with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("auto dims should fit any count: " ^ m));
  Alcotest.check_raises "of_kind raises on invalid combination"
    (Invalid_argument "Topology: torus 4x4x4 holds 64 nodes, cluster has 60") (fun () ->
      ignore (Topology.of_kind (Topology.Torus { dims = Some (4, 4, 4) }) ~nodes:60))

let test_topology_kind_strings () =
  let roundtrip k =
    match Topology.kind_of_string (Topology.kind_to_string k) with
    | Ok k' -> check (Alcotest.string) "roundtrip" (Topology.kind_to_string k) (Topology.kind_to_string k')
    | Error m -> Alcotest.fail m
  in
  roundtrip Topology.Single;
  roundtrip (Topology.Fat_tree { leaf_radix = 8 });
  roundtrip (Topology.Torus { dims = Some (2, 4, 8) });
  (match Topology.kind_of_string "fat-tree" with
  | Ok (Topology.Fat_tree { leaf_radix = 16 }) -> ()
  | _ -> Alcotest.fail "bare fat-tree should default to radix 16");
  match Topology.kind_of_string "gibberish" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "gibberish should be rejected"

(* ------------------------------------------------------------------ *)
(* Fabric                                                              *)
(* ------------------------------------------------------------------ *)

let mk_packet ~src ~dst ~bytes payload =
  {
    Fabric.src;
    dst;
    vci = src;
    header = Bytes.make 16 'h';
    body_bytes = bytes - 16;
    payload;
    crc_ok = true;
  }

let test_fabric_delivery_and_latency () =
  let eng = Engine.create () in
  let fab = Fabric.create eng p ~nodes:4 in
  let arrival = ref Time.zero in
  Fabric.set_receiver fab ~node:2 (fun _ -> arrival := Engine.now eng);
  Fabric.send fab (mk_packet ~src:0 ~dst:2 ~bytes:64 "hello");
  Engine.run eng;
  let expected = Fabric.min_latency p ~bytes:64 in
  checki "uncontended latency = min_latency" (Time.to_ps expected) (Time.to_ps !arrival)

let test_fabric_wire_accounting () =
  let pkt = mk_packet ~src:0 ~dst:1 ~bytes:100 () in
  (* 100 + 8 trailer = 108 -> 3 cells -> 159 wire bytes *)
  checki "cells" 3 (Fabric.packet_cells p pkt);
  checki "wire bytes" (3 * 53) (Fabric.wire_bytes p pkt);
  let unrestricted = { p with Params.cell_payload_bytes = 1 lsl 26 } in
  checki "unrestricted single cell" 1 (Fabric.packet_cells unrestricted pkt);
  checki "unrestricted wire = payload+trailer+header" (100 + 8 + 5)
    (Fabric.wire_bytes unrestricted pkt)

let test_fabric_fifo_per_pair () =
  let eng = Engine.create () in
  let fab = Fabric.create eng p ~nodes:2 in
  let got = ref [] in
  Fabric.set_receiver fab ~node:1 (fun pkt -> got := pkt.Fabric.payload :: !got);
  for i = 1 to 5 do
    Fabric.send fab (mk_packet ~src:0 ~dst:1 ~bytes:64 i)
  done;
  Engine.run eng;
  check (Alcotest.list Alcotest.int) "in order" [ 1; 2; 3; 4; 5 ] (List.rev !got)

let test_fabric_ingress_contention () =
  let eng = Engine.create () in
  let fab = Fabric.create eng p ~nodes:3 in
  let arrivals = ref [] in
  Fabric.set_receiver fab ~node:2 (fun pkt ->
      arrivals := (pkt.Fabric.src, Engine.now eng) :: !arrivals);
  (* two senders, one destination: receptions must not overlap *)
  Fabric.send fab (mk_packet ~src:0 ~dst:2 ~bytes:4096 ());
  Fabric.send fab (mk_packet ~src:1 ~dst:2 ~bytes:4096 ());
  Engine.run eng;
  match List.rev !arrivals with
  | [ (_, t1); (_, t2) ] ->
      let ser = Time.to_ps (Fabric.min_latency p ~bytes:4096) in
      checkb "second delayed by contention" true (Time.to_ps t2 - Time.to_ps t1 > ser / 2)
  | _ -> Alcotest.fail "expected two arrivals"

let test_fabric_rejects_bad_addresses () =
  let eng = Engine.create () in
  let fab = Fabric.create eng p ~nodes:2 in
  Alcotest.check_raises "src = dst" (Invalid_argument "Fabric.send: src = dst") (fun () ->
      Fabric.send fab (mk_packet ~src:1 ~dst:1 ~bytes:64 ()));
  Alcotest.check_raises "dst out of range" (Invalid_argument "Fabric.send: dst out of range")
    (fun () -> Fabric.send fab (mk_packet ~src:0 ~dst:5 ~bytes:64 ()))

let test_fabric_min_latency_monotone () =
  let prev = ref Time.zero in
  List.iter
    (fun b ->
      let l = Fabric.min_latency p ~bytes:b in
      checkb "monotone in size" true (l >= !prev);
      prev := l)
    [ 0; 64; 512; 2048; 8192 ]

let test_fabric_stats () =
  let eng = Engine.create () in
  let fab = Fabric.create eng p ~nodes:2 in
  Fabric.set_receiver fab ~node:1 (fun _ -> ());
  Fabric.send fab (mk_packet ~src:0 ~dst:1 ~bytes:100 ());
  Engine.run eng;
  let s = Fabric.stats fab in
  checki "packets" 1 s.Fabric.packets;
  checki "cells" 3 s.Fabric.cells;
  checki "wire bytes" 159 s.Fabric.wire_bytes;
  checki "dropped" 0 s.Fabric.dropped

let test_fabric_subcell_wire () =
  (* 32 + 8 trailer = 40 bytes fits one 48-byte cell: the frame still burns
     a whole 53-byte cell on the wire, exactly like packet_cells says *)
  let pkt = mk_packet ~src:0 ~dst:1 ~bytes:32 () in
  checki "one cell" 1 (Fabric.packet_cells p pkt);
  checki "sub-cell frame charges a full cell" 53 (Fabric.wire_bytes p pkt);
  checki "helper agrees" 53 (Fabric.frame_wire_bytes p ~bytes:32);
  (* min_latency is built from the same helper: serialising 53 wire bytes *)
  let expected =
    Time.(
      Params.wire_time p ~bytes:53 + p.Params.switch_latency + (p.Params.link_latency * 2))
  in
  checki "min_latency uses the shared formula" (Time.to_ps expected)
    (Time.to_ps (Fabric.min_latency p ~bytes:32))

let test_fabric_stats_split () =
  (* a clean run: offered = on-wire = delivered *)
  let eng = Engine.create () in
  let fab = Fabric.create eng p ~nodes:2 in
  Fabric.set_receiver fab ~node:1 (fun _ -> ());
  Fabric.send fab (mk_packet ~src:0 ~dst:1 ~bytes:100 ());
  Engine.run eng;
  let s = Fabric.stats fab in
  checki "offered" 1 s.Fabric.offered_packets;
  checki "on wire" 1 s.Fabric.packets;
  checki "delivered" 1 s.Fabric.delivered_packets;
  checki "offered wire bytes" s.Fabric.wire_bytes s.Fabric.offered_wire_bytes;
  checki "delivered wire bytes" s.Fabric.wire_bytes s.Fabric.delivered_wire_bytes;
  (* a crashed source offers but never transmits *)
  let eng = Engine.create () in
  let fab = Fabric.create eng p ~nodes:2 in
  Fabric.set_receiver fab ~node:1 (fun _ -> ());
  Fabric.set_node_down fab ~node:0 true;
  Fabric.send fab (mk_packet ~src:0 ~dst:1 ~bytes:100 ());
  Engine.run eng;
  let s = Fabric.stats fab in
  checki "crashed source still offers" 1 s.Fabric.offered_packets;
  checki "nothing on the wire" 0 s.Fabric.packets;
  checki "nothing delivered" 0 s.Fabric.delivered_packets;
  checki "counted as crash drop" 1 (Fabric.crash_drops fab ~node:0);
  (* a mid-flight frame drop is on the wire but not delivered *)
  let eng = Engine.create () in
  let fab =
    Fabric.create eng p ~faults:{ Faults.none with Faults.frame_drop = 1.0 } ~nodes:2
  in
  Fabric.set_receiver fab ~node:1 (fun _ -> ());
  Fabric.send fab (mk_packet ~src:0 ~dst:1 ~bytes:100 ());
  Engine.run eng;
  let s = Fabric.stats fab in
  checki "offered" 1 s.Fabric.offered_packets;
  checki "on the wire" 1 s.Fabric.packets;
  checki "destroyed before delivery" 0 s.Fabric.delivered_packets

(* Regression for the crash/link-down race: liveness used to be checked only
   when the last bit arrived (eta), but a frame queued behind a busy ingress
   port is delivered later (finish) — a node crashing in between still
   received it. *)
let test_fabric_crash_during_ingress_queue () =
  let eng = Engine.create () in
  let fab = Fabric.create eng p ~nodes:3 in
  let got = ref [] in
  Fabric.set_receiver fab ~node:1 (fun pkt -> got := pkt.Fabric.src :: !got);
  (* two big frames race to node 1: the second queues behind the first *)
  Fabric.send fab (mk_packet ~src:0 ~dst:1 ~bytes:4096 ());
  Fabric.send fab (mk_packet ~src:2 ~dst:1 ~bytes:4096 ());
  (* crash node 1 just after the first delivery: past the second frame's
     eta (both etas are equal), before its queued delivery at finish *)
  let first_finish = Fabric.min_latency p ~bytes:4096 in
  Engine.at eng
    Time.(first_finish + ns 1)
    (fun () -> Fabric.set_node_down fab ~node:1 true);
  Engine.run eng;
  check (Alcotest.list Alcotest.int) "only the first frame arrives" [ 0 ] (List.rev !got);
  checki "queued frame died at the crash" 1 (Fabric.crash_drops fab ~node:1);
  let s = Fabric.stats fab in
  checki "both were on the wire" 2 s.Fabric.packets;
  checki "one delivered" 1 s.Fabric.delivered_packets

let test_fabric_link_down_during_ingress_queue () =
  (* same race, with a link-down window opening between eta and finish *)
  let first_finish = Fabric.min_latency p ~bytes:4096 in
  let window =
    { Faults.w_node = 1; w_from = Time.(first_finish + ns 1); w_upto = Time.s 1 }
  in
  let eng = Engine.create () in
  let fab =
    Fabric.create eng p ~faults:{ Faults.none with Faults.link_down = [ window ] } ~nodes:3
  in
  let got = ref [] in
  Fabric.set_receiver fab ~node:1 (fun pkt -> got := pkt.Fabric.src :: !got);
  Fabric.send fab (mk_packet ~src:0 ~dst:1 ~bytes:4096 ());
  Fabric.send fab (mk_packet ~src:2 ~dst:1 ~bytes:4096 ());
  Engine.run eng;
  check (Alcotest.list Alcotest.int) "only the first frame arrives" [ 0 ] (List.rev !got);
  let s = Fabric.stats fab in
  checki "one delivered" 1 s.Fabric.delivered_packets

(* ------------------------------------------------------------------ *)
(* Multi-switch fabrics                                                *)
(* ------------------------------------------------------------------ *)

let test_fabric_multihop_latency () =
  (* an uncontended frame's arrival matches path_latency on every shape *)
  List.iter
    (fun (name, kind, src, dst) ->
      let eng = Engine.create () in
      let fab = Fabric.create ~topology:kind eng p ~nodes:8 in
      let arrival = ref Time.zero in
      Fabric.set_receiver fab ~node:dst (fun _ -> arrival := Engine.now eng);
      Fabric.send fab (mk_packet ~src ~dst ~bytes:256 "x");
      Engine.run eng;
      let expected = Fabric.path_latency fab ~src ~dst ~bytes:256 in
      checki (name ^ ": arrival = path_latency") (Time.to_ps expected) (Time.to_ps !arrival))
    [
      ("single", Topology.Single, 0, 7);
      ("fat-tree same leaf", Topology.Fat_tree { leaf_radix = 4 }, 0, 1);
      ("fat-tree cross leaf", Topology.Fat_tree { leaf_radix = 4 }, 0, 7);
      ("torus", Topology.Torus { dims = Some (2, 2, 2) }, 0, 7);
    ]

let test_fabric_single_matches_seed_timing () =
  (* the Single topology takes the literal seed timing path: path_latency
     and min_latency agree, and so does the measured arrival *)
  let eng = Engine.create () in
  let fab = Fabric.create ~topology:Topology.Single eng p ~nodes:4 in
  let arrival = ref Time.zero in
  Fabric.set_receiver fab ~node:2 (fun _ -> arrival := Engine.now eng);
  Fabric.send fab (mk_packet ~src:0 ~dst:2 ~bytes:64 "hello");
  Engine.run eng;
  checki "path_latency = min_latency"
    (Time.to_ps (Fabric.min_latency p ~bytes:64))
    (Time.to_ps (Fabric.path_latency fab ~src:0 ~dst:2 ~bytes:64));
  checki "arrival = min_latency"
    (Time.to_ps (Fabric.min_latency p ~bytes:64))
    (Time.to_ps !arrival)

let test_fabric_hop_contention () =
  (* fat-tree, radix 4: nodes 0 and 1 share leaf 0, and both their frames
     to node 4 must leave on the same up-port — the second waits *)
  let eng = Engine.create () in
  let fab = Fabric.create ~topology:(Topology.Fat_tree { leaf_radix = 4 }) eng p ~nodes:8 in
  let arrivals = ref [] in
  Fabric.set_receiver fab ~node:4 (fun pkt ->
      arrivals := (pkt.Fabric.src, Engine.now eng) :: !arrivals);
  Fabric.send fab (mk_packet ~src:0 ~dst:4 ~bytes:4096 ());
  Fabric.send fab (mk_packet ~src:1 ~dst:4 ~bytes:4096 ());
  Engine.run eng;
  let s = Fabric.stats fab in
  checkb "contention was charged" true (s.Fabric.hop_waits > 0);
  checki "both delivered" 2 s.Fabric.delivered_packets;
  match List.rev !arrivals with
  | [ (_, t1); (_, t2) ] ->
      let ser =
        Time.to_ps (Params.wire_time p ~bytes:(Fabric.frame_wire_bytes p ~bytes:4096))
      in
      checkb "second serialised behind the first" true (Time.to_ps t2 - Time.to_ps t1 >= ser)
  | _ -> Alcotest.fail "expected two arrivals"

let test_fabric_single_counts_banyan_conflicts () =
  (* routes (0 -> 3) and (4 -> 1) share the stage-0 wire of an 8-port omega
     network: on the seed switch the overlap is counted but not charged *)
  let sw = Switch.create ~ports:8 in
  checkb "routes do conflict" true (Switch.conflict sw (0, 3) (4, 1));
  let eng = Engine.create () in
  let fab = Fabric.create eng p ~nodes:8 in
  let arrivals = ref [] in
  let recv dst = Fabric.set_receiver fab ~node:dst (fun _ -> arrivals := Engine.now eng :: !arrivals) in
  recv 3;
  recv 1;
  Fabric.send fab (mk_packet ~src:0 ~dst:3 ~bytes:256 ());
  Fabric.send fab (mk_packet ~src:4 ~dst:1 ~bytes:256 ());
  Engine.run eng;
  let s = Fabric.stats fab in
  checkb "internal conflict counted" true (s.Fabric.banyan_conflicts > 0);
  checki "nothing waited (seed timing preserved)" 0 s.Fabric.hop_waits;
  (match !arrivals with
  | [ t1; t2 ] ->
      checki "both frames keep the seed latency" (Time.to_ps t1) (Time.to_ps t2);
      checki "which is min_latency"
        (Time.to_ps (Fabric.min_latency p ~bytes:256))
        (Time.to_ps t1)
  | _ -> Alcotest.fail "expected two arrivals")

let test_fabric_unrestricted_faster () =
  let latency params =
    let eng = Engine.create () in
    let fab = Fabric.create eng params ~nodes:2 in
    let t = ref Time.zero in
    Fabric.set_receiver fab ~node:1 (fun _ -> t := Engine.now eng);
    Fabric.send fab (mk_packet ~src:0 ~dst:1 ~bytes:4096 ());
    Engine.run eng;
    !t
  in
  let restricted = latency p in
  let unrestricted = latency { p with Params.cell_payload_bytes = 1 lsl 26 } in
  checkb "no framing overhead is faster" true (unrestricted < restricted)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "atm"
    [
      ( "cell",
        [
          Alcotest.test_case "sizes" `Quick test_cell_sizes;
          Alcotest.test_case "roundtrip" `Quick test_cell_roundtrip;
          Alcotest.test_case "validation" `Quick test_cell_validation;
          qc cell_roundtrip_qc;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vector" `Quick test_crc32_known_vector;
          Alcotest.test_case "incremental" `Quick test_crc32_incremental;
        ] );
      ( "aal5",
        [
          Alcotest.test_case "roundtrip" `Quick test_aal5_roundtrip;
          Alcotest.test_case "empty frame" `Quick test_aal5_empty_frame;
          Alcotest.test_case "last-cell marking" `Quick test_aal5_last_bit;
          Alcotest.test_case "corruption detected" `Quick test_aal5_corruption_detected;
          Alcotest.test_case "pending cells" `Quick test_aal5_pending_cells;
          Alcotest.test_case "push_result CRC mismatch" `Quick
            test_aal5_push_result_crc_mismatch;
          Alcotest.test_case "push_result bad length" `Quick test_aal5_push_result_bad_length;
          Alcotest.test_case "truncated trailer" `Quick test_aal5_truncated_trailer;
          Alcotest.test_case "demux interleaved VCs" `Quick test_aal5_demux_interleaved_vcs;
          Alcotest.test_case "demux isolates errors per VC" `Quick
            test_aal5_demux_error_isolated_to_vc;
          qc aal5_roundtrip_qc;
          qc aal5_cell_count_qc;
        ] );
      ( "switch",
        [
          Alcotest.test_case "structure" `Quick test_switch_structure;
          Alcotest.test_case "routes reach destination" `Quick
            test_switch_routes_reach_destination;
          Alcotest.test_case "conflicts" `Quick test_switch_conflicts;
          qc switch_conflict_symmetric;
          qc switch_route_exchanged_bit;
          qc switch_conflict_reflexive;
        ] );
      ( "topology",
        [
          Alcotest.test_case "single" `Quick test_topology_single;
          Alcotest.test_case "fat-tree structure" `Quick test_topology_fat_tree_structure;
          Alcotest.test_case "fat-tree reachability" `Quick test_topology_fat_tree_reachability;
          Alcotest.test_case "torus structure" `Quick test_topology_torus_structure;
          Alcotest.test_case "torus dimension order" `Quick test_topology_torus_dimension_order;
          Alcotest.test_case "validate" `Quick test_topology_validate;
          Alcotest.test_case "kind strings" `Quick test_topology_kind_strings;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "delivery latency" `Quick test_fabric_delivery_and_latency;
          Alcotest.test_case "wire accounting" `Quick test_fabric_wire_accounting;
          Alcotest.test_case "FIFO per src-dst pair" `Quick test_fabric_fifo_per_pair;
          Alcotest.test_case "ingress contention" `Quick test_fabric_ingress_contention;
          Alcotest.test_case "address validation" `Quick test_fabric_rejects_bad_addresses;
          Alcotest.test_case "min_latency monotone" `Quick test_fabric_min_latency_monotone;
          Alcotest.test_case "stats" `Quick test_fabric_stats;
          Alcotest.test_case "unrestricted cells faster" `Quick test_fabric_unrestricted_faster;
          Alcotest.test_case "sub-cell wire charge" `Quick test_fabric_subcell_wire;
          Alcotest.test_case "offered/wire/delivered split" `Quick test_fabric_stats_split;
          Alcotest.test_case "crash during ingress queue" `Quick
            test_fabric_crash_during_ingress_queue;
          Alcotest.test_case "link down during ingress queue" `Quick
            test_fabric_link_down_during_ingress_queue;
        ] );
      ( "multi-switch",
        [
          Alcotest.test_case "multihop latency" `Quick test_fabric_multihop_latency;
          Alcotest.test_case "single matches seed timing" `Quick
            test_fabric_single_matches_seed_timing;
          Alcotest.test_case "hop contention" `Quick test_fabric_hop_contention;
          Alcotest.test_case "single counts banyan conflicts" `Quick
            test_fabric_single_counts_banyan_conflicts;
        ] );
    ]
