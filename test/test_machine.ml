(* Tests for the workstation node model: parameters, the two-level
   direct-mapped write-back cache, the TLB, and the snooping memory bus. *)

module Time = Cni_engine.Time
module Engine = Cni_engine.Engine
module Params = Cni_machine.Params
module Cache = Cni_machine.Cache
module Tlb = Cni_machine.Tlb
module Bus = Cni_machine.Bus

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let p = Params.default

(* ------------------------------------------------------------------ *)
(* Params                                                              *)
(* ------------------------------------------------------------------ *)

let test_derived_costs () =
  (* one 8-byte word: 4 acquisition + 2 transfer = 6 bus cycles of 40 ns *)
  checki "bus transfer 1 word" (6 * 40_000) (Time.to_ps (Params.bus_transfer p ~bytes:8));
  (* a 4 KB page: 4 + 512*2 = 1028 bus cycles ~ 41.1 us *)
  checki "bus transfer 4KB" (1028 * 40_000) (Time.to_ps (Params.bus_transfer p ~bytes:4096));
  (* partial words round up *)
  checki "partial word rounds up"
    (Time.to_ps (Params.bus_transfer p ~bytes:8))
    (Time.to_ps (Params.bus_transfer p ~bytes:1))

let test_wire_time () =
  (* 622 Mb/s: 53 bytes = 424 bits ~ 681.7 ns *)
  let t = Time.to_ns_float (Params.wire_time p ~bytes:53) in
  checkb "53B cell time ~ 0.68us" true (t > 675.0 && t < 690.0)

let test_cells_for () =
  checki "empty payload still one cell" 1 (Params.cells_for p ~bytes:0);
  checki "exactly one cell" 1 (Params.cells_for p ~bytes:48);
  checki "one byte over" 2 (Params.cells_for p ~bytes:49);
  checki "4KB+trailer" 86 (Params.cells_for p ~bytes:(4096 + 8));
  let unrestricted = { p with Params.cell_payload_bytes = 1 lsl 26 } in
  checki "unrestricted: single cell" 1 (Params.cells_for unrestricted ~bytes:1_000_000)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_miss () =
  let c = Cache.create p in
  let r1 = Cache.access c ~addr:0x1000 ~write:false in
  checkb "cold miss from memory" true (r1.Cache.level = Cache.Memory);
  checki "miss cycles" (1 + 10 + 20) r1.Cache.cycles;
  let r2 = Cache.access c ~addr:0x1000 ~write:false in
  checkb "then L1 hit" true (r2.Cache.level = Cache.L1);
  checki "hit cycles" 1 r2.Cache.cycles;
  (* a different word in the same 32-byte line also hits *)
  let r3 = Cache.access c ~addr:0x1008 ~write:true in
  checkb "same line hits" true (r3.Cache.level = Cache.L1)

let test_cache_l1_conflict_spills_to_l2 () =
  let c = Cache.create p in
  (* two addresses mapping to the same L1 set (L1 = 32 KB direct-mapped) *)
  let a = 0x0 and b = p.Params.l1_bytes in
  ignore (Cache.access c ~addr:a ~write:false);
  ignore (Cache.access c ~addr:b ~write:false);
  (* a was displaced from L1; a clean victim is simply dropped, so the next
     access refills from... L2 only holds dirty spills. Make it dirty. *)
  ignore (Cache.access c ~addr:a ~write:true);
  ignore (Cache.access c ~addr:b ~write:false);
  let r = Cache.access c ~addr:a ~write:false in
  checkb "dirty victim found in L2" true (r.Cache.level = Cache.L2);
  checki "L2 hit cycles" 11 r.Cache.cycles

let test_cache_writeback_on_eviction () =
  let c = Cache.create p in
  (* dirty a line, then displace it through both levels: addresses spaced by
     l2_bytes share both the L1 and the L2 set *)
  ignore (Cache.access c ~addr:0x40 ~write:true);
  let spaced k = 0x40 + (k * p.Params.l2_bytes) in
  let wb = ref [] in
  for k = 1 to 2 do
    let r = Cache.access c ~addr:(spaced k) ~write:true in
    wb := r.Cache.writeback_lines @ !wb
  done;
  checkb "dirty line eventually written back" true (List.mem 0x40 !wb)

let test_cache_flush_range () =
  let c = Cache.create p in
  ignore (Cache.access c ~addr:0x2000 ~write:true);
  ignore (Cache.access c ~addr:0x2020 ~write:true);
  ignore (Cache.access c ~addr:0x2040 ~write:false);
  checki "dirty lines counted" 2 (Cache.dirty_lines_in c ~addr:0x2000 ~bytes:0x80);
  let writebacks, cycles = Cache.flush_range c ~addr:0x2000 ~bytes:0x80 in
  checki "two dirty lines flushed" 2 (List.length writebacks);
  checkb "walk cost > 0" true (cycles > 0);
  (* after the flush, the lines are gone *)
  let r = Cache.access c ~addr:0x2000 ~write:false in
  checkb "flushed line misses" true (r.Cache.level = Cache.Memory);
  checki "no dirty lines left" 0 (Cache.dirty_lines_in c ~addr:0x2000 ~bytes:0x80)

let test_cache_invalidate_range () =
  let c = Cache.create p in
  ignore (Cache.access c ~addr:0x3000 ~write:true);
  let dropped = Cache.invalidate_range c ~addr:0x3000 ~bytes:32 in
  checki "one line dropped" 1 dropped;
  let r = Cache.access c ~addr:0x3000 ~write:false in
  checkb "invalidated line misses" true (r.Cache.level = Cache.Memory)

let test_cache_stats () =
  let c = Cache.create p in
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:0 ~write:false);
  let s = Cache.stats c in
  checki "accesses" 2 s.Cache.accesses;
  checki "l1 hits" 1 s.Cache.l1_hits;
  checki "memory fills" 1 s.Cache.memory_fills;
  Cache.reset_stats c;
  checki "reset" 0 (Cache.stats c).Cache.accesses

(* property: accessing the same address twice in a row always hits L1 *)
let cache_rehit =
  QCheck.Test.make ~name:"immediate re-access hits L1" ~count:200
    QCheck.(list (pair (int_bound 0xFFFFF) bool))
    (fun ops ->
      let c = Cache.create p in
      List.for_all
        (fun (addr, write) ->
          ignore (Cache.access c ~addr ~write);
          (Cache.access c ~addr ~write:false).Cache.level = Cache.L1)
        ops)

(* property: flush_range leaves no dirty line behind in the range *)
let cache_flush_clean =
  QCheck.Test.make ~name:"flush leaves range clean" ~count:200
    QCheck.(list (int_bound 0xFFFF))
    (fun addrs ->
      let c = Cache.create p in
      List.iter (fun a -> ignore (Cache.access c ~addr:a ~write:true)) addrs;
      ignore (Cache.flush_range c ~addr:0 ~bytes:0x10000);
      Cache.dirty_lines_in c ~addr:0 ~bytes:0x10000 = 0)

let test_cache_write_through () =
  let c = Cache.create { p with Params.cache_policy = Params.Write_through } in
  (* every store reaches memory immediately... *)
  let r1 = Cache.access c ~addr:0x5000 ~write:true in
  checkb "store reported on the bus" true (List.mem 0x5000 r1.Cache.writeback_lines);
  let r2 = Cache.access c ~addr:0x5000 ~write:true in
  checkb "even on an L1 hit" true (List.mem 0x5000 r2.Cache.writeback_lines);
  (* ...so nothing is ever dirty and flushes are free *)
  checki "no dirty lines" 0 (Cache.dirty_lines_in c ~addr:0x5000 ~bytes:32);
  let writebacks, _ = Cache.flush_range c ~addr:0x5000 ~bytes:32 in
  checki "flush writes nothing back" 0 (List.length writebacks)

(* ------------------------------------------------------------------ *)
(* TLB                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cache_line_granularity () =
  let c = Cache.create p in
  ignore (Cache.access c ~addr:0x100 ~write:false);
  (* addresses within the same 32-byte line share the entry... *)
  checkb "same line" true ((Cache.access c ~addr:0x11F ~write:false).Cache.level = Cache.L1);
  (* ...the next line does not *)
  checkb "next line" true ((Cache.access c ~addr:0x120 ~write:false).Cache.level = Cache.Memory)

let test_cache_invalidate_multiple () =
  let c = Cache.create p in
  for k = 0 to 7 do
    ignore (Cache.access c ~addr:(0x4000 + (k * 32)) ~write:true)
  done;
  checki "eight lines dropped" 8 (Cache.invalidate_range c ~addr:0x4000 ~bytes:256);
  checki "second invalidate finds none" 0 (Cache.invalidate_range c ~addr:0x4000 ~bytes:256)

let test_zero_byte_ranges () =
  let c = Cache.create p in
  let wb, cycles = Cache.flush_range c ~addr:0x100 ~bytes:0 in
  checki "empty flush" 0 (List.length wb);
  checki "no walk cost" 0 cycles;
  checki "empty invalidate" 0 (Cache.invalidate_range c ~addr:0x100 ~bytes:0);
  checki "empty dirty count" 0 (Cache.dirty_lines_in c ~addr:0x100 ~bytes:0)

let test_tlb () =
  let t = Tlb.create ~entries:4 ~miss_cycles:30 ~page_bytes:2048 in
  checki "cold miss" 30 (Tlb.lookup t ~addr:0);
  checki "hit" 0 (Tlb.lookup t ~addr:100);
  checki "other page misses" 30 (Tlb.lookup t ~addr:2048);
  (* 4-entry direct-mapped: page 0 and page 4 conflict *)
  checki "conflict" 30 (Tlb.lookup t ~addr:(4 * 2048));
  checki "original evicted" 30 (Tlb.lookup t ~addr:0);
  Tlb.flush t;
  checki "flush drops all" 30 (Tlb.lookup t ~addr:0);
  let s = Tlb.stats t in
  checki "lookups" 6 s.Tlb.lookups;
  checki "misses" 5 s.Tlb.misses

(* ------------------------------------------------------------------ *)
(* Bus                                                                 *)
(* ------------------------------------------------------------------ *)

let test_bus_writeback_snoops () =
  let eng = Engine.create () in
  let bus = Bus.create eng p in
  let snooped = ref [] in
  Bus.register_snooper bus (fun ~dir ~addr ~bytes ->
      if dir = Bus.Cpu_writeback then snooped := (addr, bytes) :: !snooped);
  let t = Bus.writeback_lines bus [ 0x40; 0x80 ] in
  checki "two lines snooped" 2 (List.length !snooped);
  (* each 32-byte line costs 4 + 4*2 = 12 bus cycles *)
  checki "occupancy" (2 * 12 * 40_000) (Time.to_ps t)

let test_bus_dma_serializes () =
  let eng = Engine.create () in
  let bus = Bus.create eng p in
  let done2 = ref Time.zero in
  Engine.spawn eng (fun () -> Bus.dma bus ~dir:Bus.Dma_from_memory ~addr:0 ~bytes:4096);
  Engine.spawn eng (fun () ->
      Bus.dma bus ~dir:Bus.Dma_to_memory ~addr:8192 ~bytes:4096;
      done2 := Engine.now eng);
  Engine.run eng;
  (* the second transfer had to wait for the first: 2 x 1028 bus cycles *)
  checki "serialized" (2 * 1028 * 40_000) (Time.to_ps !done2);
  let s = Bus.stats bus in
  checki "two transfers" 2 s.Bus.dma_transfers;
  checki "bytes" 8192 s.Bus.dma_bytes

let test_bus_dma_direction_snoop () =
  let eng = Engine.create () in
  let bus = Bus.create eng p in
  let dirs = ref [] in
  Bus.register_snooper bus (fun ~dir ~addr:_ ~bytes:_ -> dirs := dir :: !dirs);
  Engine.spawn eng (fun () ->
      Bus.dma bus ~dir:Bus.Dma_from_memory ~addr:0 ~bytes:64;
      Bus.dma bus ~dir:Bus.Dma_to_memory ~addr:0 ~bytes:64);
  Engine.run eng;
  check
    (Alcotest.list Alcotest.bool)
    "to-memory then from-memory seen"
    [ true; true ]
    (List.map (fun d -> d = Bus.Dma_to_memory || d = Bus.Dma_from_memory) !dirs)

let test_bus_rejects_writeback_dir () =
  let eng = Engine.create () in
  let bus = Bus.create eng p in
  let raised = ref false in
  Engine.spawn eng (fun () ->
      try Bus.dma bus ~dir:Bus.Cpu_writeback ~addr:0 ~bytes:8
      with Invalid_argument _ -> raised := true);
  Engine.run eng;
  checkb "bad direction rejected" true !raised

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "machine"
    [
      ( "params",
        [
          Alcotest.test_case "derived bus costs" `Quick test_derived_costs;
          Alcotest.test_case "wire time" `Quick test_wire_time;
          Alcotest.test_case "cells_for" `Quick test_cells_for;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss levels" `Quick test_cache_hit_miss;
          Alcotest.test_case "L1 victim spills to L2" `Quick test_cache_l1_conflict_spills_to_l2;
          Alcotest.test_case "write-back on eviction" `Quick test_cache_writeback_on_eviction;
          Alcotest.test_case "flush_range" `Quick test_cache_flush_range;
          Alcotest.test_case "invalidate_range" `Quick test_cache_invalidate_range;
          Alcotest.test_case "stats" `Quick test_cache_stats;
          Alcotest.test_case "write-through policy" `Quick test_cache_write_through;
          qc cache_rehit;
          qc cache_flush_clean;
        ] );
      ( "cache-extra",
        [
          Alcotest.test_case "line granularity" `Quick test_cache_line_granularity;
          Alcotest.test_case "invalidate multiple lines" `Quick test_cache_invalidate_multiple;
          Alcotest.test_case "zero-byte ranges" `Quick test_zero_byte_ranges;
        ] );
      ("tlb", [ Alcotest.test_case "direct-mapped behaviour" `Quick test_tlb ]);
      ( "bus",
        [
          Alcotest.test_case "write-backs snooped + costed" `Quick test_bus_writeback_snoops;
          Alcotest.test_case "DMA serialization" `Quick test_bus_dma_serializes;
          Alcotest.test_case "DMA direction snoop" `Quick test_bus_dma_direction_snoop;
          Alcotest.test_case "rejects writeback direction" `Quick test_bus_rejects_writeback_dir;
        ] );
    ]
