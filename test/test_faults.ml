(* Fault injection + reliable delivery: the cluster must survive a lossy
   fabric. Covers the deterministic fault model, the NIC receive window,
   recovery through retransmission (cell loss, corruption, link-down
   windows), structured failure when the retry budget runs out, and the
   zero-fault fast path staying cost-free. *)

module Time = Cni_engine.Time
module Engine = Cni_engine.Engine
module Faults = Cni_atm.Faults
module Reliable = Cni_nic.Reliable
module Nic = Cni_nic.Nic
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Mp = Cni_mp.Mp
module Jacobi = Cni_apps.Jacobi
module Runner = Cni_experiments.Runner

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let cni = `Cni Cni_nic.Nic.default_cni_options

(* ------------------------------------------------------------------ *)
(* Fault model                                                         *)
(* ------------------------------------------------------------------ *)

let test_judge_deterministic () =
  let cfg =
    { Faults.none with Faults.cell_loss = 0.05; cell_corrupt = 0.03; frame_drop = 0.02 }
  in
  let stream cfg =
    let f = Faults.create cfg in
    List.init 500 (fun i -> Faults.judge f ~cells:(1 + (i mod 7)))
  in
  checkb "same config, same verdict stream" true (stream cfg = stream cfg);
  checkb "a different seed draws a different stream" true
    (stream cfg <> stream { cfg with Faults.seed = 7 });
  checkb "faults actually fire at these rates" true
    (List.exists (fun v -> v <> Faults.Pass) (stream cfg))

let test_judge_none_always_passes () =
  let f = Faults.create Faults.none in
  for cells = 1 to 50 do
    checkb "clean model passes everything" true (Faults.judge f ~cells = Faults.Pass)
  done

let test_config_validation () =
  (try
     ignore (Faults.create { Faults.none with Faults.cell_loss = 1.5 });
     Alcotest.fail "probability > 1 accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (Faults.create
         {
           Faults.none with
           Faults.link_down = [ { Faults.w_node = 0; w_from = Time.us 5; w_upto = Time.us 5 } ];
         });
    Alcotest.fail "empty window accepted"
  with Invalid_argument _ -> ()

let contains hay needle =
  try
    ignore (Str.search_forward (Str.regexp_string needle) hay 0);
    true
  with Not_found -> false

let test_schedule_text_roundtrip () =
  let cfg =
    {
      Faults.seed = 9;
      cell_loss = 1e-4;
      cell_corrupt = 0.;
      frame_drop = 0.;
      link_down = [ { Faults.w_node = 2; w_from = Time.us 10; w_upto = Time.us 30 } ];
      schedule =
        [
          { Faults.e_at = Time.us 100; e_node = 1; e_fault = Faults.Crash { scrub = true } };
          { Faults.e_at = Time.us 300; e_node = 1; e_fault = Faults.Restart };
          { Faults.e_at = Time.us 250; e_node = 3; e_fault = Faults.Crash { scrub = false } };
        ];
    }
  in
  (match Faults.config_of_string (Faults.config_to_string cfg) with
  | Ok cfg' -> checkb "text round-trip preserves the config" true (cfg = cfg')
  | Error e -> Alcotest.fail e);
  match Faults.config_of_string (Faults.config_to_string Faults.none) with
  | Ok cfg' -> checkb "none renders to nothing and parses back" true (Faults.is_none cfg')
  | Error e -> Alcotest.fail e

let test_schedule_parse_errors () =
  (match Faults.config_of_string "seed 7\nfrobnicate 3" with
  | Error e -> checkb "unknown directive names its line" true (contains e "line 2")
  | Ok _ -> Alcotest.fail "unknown directive accepted");
  (match Faults.config_of_string "crash 1 soon" with
  | Error e -> checkb "bad number reported" true (contains e "soon")
  | Ok _ -> Alcotest.fail "non-numeric time accepted");
  match Faults.config_of_string "# comment only\n\ncrash 2 100 scrub\nrestart 2 300" with
  | Ok cfg -> checki "comments and blanks skipped" 2 (List.length cfg.Faults.schedule)
  | Error e -> Alcotest.fail e

let test_reversed_window_rejected () =
  let w = { Faults.w_node = 1; w_from = Time.us 20; w_upto = Time.us 10 } in
  (try
     ignore (Faults.create { Faults.none with Faults.link_down = [ w ] });
     Alcotest.fail "reversed window accepted"
   with Invalid_argument _ -> ());
  match Faults.validate ~nodes:2 { Faults.none with Faults.link_down = [ w ] } with
  | Ok () -> Alcotest.fail "validate passed a reversed window"
  | Error es -> checkb "validate names the reversal" true
      (List.exists (fun e -> contains e "reversed") es)

let test_overlapping_windows_merge () =
  let w node a b = { Faults.w_node = node; w_from = Time.us a; w_upto = Time.us b } in
  checkb "overlapping and adjacent same-node windows merge" true
    (Faults.normalize_windows [ w 1 15 30; w 1 10 20; w 1 30 35; w 2 12 18 ]
    = [ w 1 10 35; w 2 12 18 ]);
  checkb "disjoint windows untouched" true
    (Faults.normalize_windows [ w 1 10 20; w 1 25 30 ] = [ w 1 10 20; w 1 25 30 ])

let test_validate_collects_errors () =
  let cfg =
    {
      Faults.none with
      Faults.cell_loss = 2.0;
      link_down = [ { Faults.w_node = 9; w_from = Time.us 1; w_upto = Time.us 2 } ];
      schedule =
        [
          { Faults.e_at = Time.us 10; e_node = 1; e_fault = Faults.Crash { scrub = false } };
          { Faults.e_at = Time.us 20; e_node = 1; e_fault = Faults.Crash { scrub = false } };
          { Faults.e_at = Time.us 30; e_node = 2; e_fault = Faults.Restart };
        ];
    }
  in
  match Faults.validate ~nodes:4 cfg with
  | Ok () -> Alcotest.fail "inconsistent config validated"
  | Error es ->
      checki "every problem reported, not just the first" 4 (List.length es);
      checkb "double crash caught" true
        (List.exists (fun e -> contains e "already crashed") es);
      checkb "orphan restart caught" true
        (List.exists (fun e -> contains e "without a prior crash") es)

let test_link_down_window () =
  let f =
    Faults.create
      {
        Faults.none with
        Faults.link_down = [ { Faults.w_node = 1; w_from = Time.us 10; w_upto = Time.us 20 } ];
      }
  in
  checkb "before the window" false (Faults.link_down f ~node:1 ~now:(Time.us 9));
  checkb "inside the window" true (Faults.link_down f ~node:1 ~now:(Time.us 10));
  checkb "end is exclusive" false (Faults.link_down f ~node:1 ~now:(Time.us 20));
  checkb "other nodes unaffected" false (Faults.link_down f ~node:0 ~now:(Time.us 15))

(* ------------------------------------------------------------------ *)
(* Receive window                                                      *)
(* ------------------------------------------------------------------ *)

let test_window_dedup () =
  let w = Reliable.Window.create () in
  checkb "1 fresh" true (Reliable.Window.observe w 1 = `Fresh);
  checkb "1 again is a duplicate" true (Reliable.Window.observe w 1 = `Duplicate);
  checkb "3 out of order is fresh" true (Reliable.Window.observe w 3 = `Fresh);
  checki "floor waits for 2" 1 (Reliable.Window.floor w);
  checkb "2 fresh" true (Reliable.Window.observe w 2 = `Fresh);
  checki "floor advanced over the contiguous prefix" 3 (Reliable.Window.floor w);
  checkb "2 now below the floor" true (Reliable.Window.observe w 2 = `Duplicate);
  checkb "3 remembered as seen" true (Reliable.Window.observe w 3 = `Duplicate)

(* ------------------------------------------------------------------ *)
(* End-to-end recovery                                                 *)
(* ------------------------------------------------------------------ *)

let jacobi_cfg = { Jacobi.default_config with Jacobi.n = 96; iterations = 6 }

let run_jacobi ?faults ?reliability ~kind () =
  let cs = ref nan in
  let r =
    Runner.run ?faults ?reliability ~kind ~procs:4 (fun cluster lrcs ->
        cs := (Jacobi.run cluster lrcs jacobi_cfg).Jacobi.checksum)
  in
  (r, !cs)

let clean_checksum = lazy (snd (run_jacobi ~kind:(Runner.cni ()) ()))

let test_survives_cell_loss () =
  List.iter
    (fun kind ->
      let faults = { Faults.none with Faults.cell_loss = 2e-3 } in
      let r, cs = run_jacobi ~faults ~kind () in
      check (Alcotest.float 0.0) "numerics unchanged under loss" (Lazy.force clean_checksum) cs;
      checkb "frames were lost" true (r.Runner.fault_drops > 0);
      checkb "lost frames were retransmitted" true (r.Runner.retransmits > 0))
    [ Runner.cni (); Runner.standard ]

let test_survives_corruption () =
  let faults = { Faults.none with Faults.cell_corrupt = 2e-3 } in
  let r, cs = run_jacobi ~faults ~kind:(Runner.cni ()) () in
  check (Alcotest.float 0.0) "numerics unchanged under corruption"
    (Lazy.force clean_checksum) cs;
  checkb "CRC-failed frames were retransmitted" true (r.Runner.retransmits > 0)

let test_faulty_runs_deterministic () =
  let faults = { Faults.none with Faults.cell_loss = 1e-3; Faults.cell_corrupt = 1e-3 } in
  let a, _ = run_jacobi ~faults ~kind:(Runner.cni ()) () in
  let b, _ = run_jacobi ~faults ~kind:(Runner.cni ()) () in
  checki "bit-identical simulated time" (Time.to_ps a.Runner.elapsed)
    (Time.to_ps b.Runner.elapsed);
  checki "identical retransmission count" a.Runner.retransmits b.Runner.retransmits

let test_loss_costs_time () =
  let lossy = { Faults.none with Faults.cell_loss = 5e-3 } in
  (* baseline with the same reliability protocol, only the fabric differs *)
  let clean, _ =
    run_jacobi ~reliability:Reliable.default ~kind:(Runner.cni ()) ()
  and faulty, _ = run_jacobi ~faults:lossy ~kind:(Runner.cni ()) () in
  checkb "retransmission delay shows up in elapsed time" true
    (Time.to_ps faulty.Runner.elapsed > Time.to_ps clean.Runner.elapsed)

let test_zero_fault_path_costs_nothing () =
  let r, _ = run_jacobi ~kind:(Runner.cni ()) () in
  checki "no retransmissions without reliability" 0 r.Runner.retransmits;
  checki "no fault drops without faults" 0 r.Runner.fault_drops;
  (* reliability is off entirely: the NIC holds no protocol state *)
  let cluster : int Mp.envelope Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  checkb "rel_stats absent on a clean cluster" true
    (Nic.rel_stats (Node.nic (Cluster.node cluster 0)) = None)

let test_link_down_recovery () =
  (* node 1's link dies for the first 5 ms; exponential backoff must carry
     the retransmissions past the outage *)
  let faults =
    {
      Faults.none with
      Faults.link_down = [ { Faults.w_node = 1; w_from = Time.zero; w_upto = Time.us 5_000 } ];
    }
  in
  let cluster : int Mp.envelope Cluster.t = Cluster.create ~faults ~nic_kind:cni ~nodes:2 () in
  let eps = Mp.install cluster in
  let got = ref (-1) in
  Cluster.run_app cluster (fun node ->
      let ep = eps.(Node.id node) in
      if Mp.rank ep = 0 then Mp.send ep ~dst:1 ~tag:1 99
      else got := (Mp.recv ep ~tag:1 ()).Mp.value);
  checki "message arrived after the outage" 99 !got;
  checkb "delivery needed retransmissions" true (Cluster.retransmits cluster > 0)

let test_permanent_outage_fails_structurally () =
  (* a link that never comes back: the sender must surface Delivery_failed
     once its retry budget is exhausted, not hang the simulation *)
  let faults =
    {
      Faults.none with
      Faults.link_down =
        [ { Faults.w_node = 1; w_from = Time.zero; w_upto = Time.us 600_000_000 } ];
    }
  in
  let cluster : int Mp.envelope Cluster.t = Cluster.create ~faults ~nic_kind:cni ~nodes:2 () in
  let eps = Mp.install cluster in
  match
    Cluster.run_app cluster (fun node ->
        let ep = eps.(Node.id node) in
        if Mp.rank ep = 0 then Mp.send ep ~dst:1 ~tag:1 1
        else ignore (Mp.recv ep ~tag:1 ()))
  with
  | () -> Alcotest.fail "expected Delivery_failed"
  | exception Engine.Fiber_failure (_, Reliable.Delivery_failed f) ->
      checki "failure names the sending node" 0 f.Reliable.node;
      checki "failure names the destination" 1 f.Reliable.dst;
      checki "budget was fully spent" Reliable.default.Reliable.max_tries f.Reliable.tries

let () =
  Alcotest.run "faults"
    [
      ( "model",
        [
          Alcotest.test_case "judge deterministic" `Quick test_judge_deterministic;
          Alcotest.test_case "none passes everything" `Quick test_judge_none_always_passes;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "link-down windows" `Quick test_link_down_window;
          Alcotest.test_case "schedule text round-trip" `Quick test_schedule_text_roundtrip;
          Alcotest.test_case "schedule parse errors" `Quick test_schedule_parse_errors;
          Alcotest.test_case "reversed window rejected" `Quick test_reversed_window_rejected;
          Alcotest.test_case "overlapping windows merge" `Quick test_overlapping_windows_merge;
          Alcotest.test_case "validate collects errors" `Quick test_validate_collects_errors;
        ] );
      ( "window",
        [ Alcotest.test_case "duplicate suppression" `Quick test_window_dedup ] );
      ( "recovery",
        [
          Alcotest.test_case "survives cell loss (both NICs)" `Quick test_survives_cell_loss;
          Alcotest.test_case "survives corruption" `Quick test_survives_corruption;
          Alcotest.test_case "faulty runs deterministic" `Quick test_faulty_runs_deterministic;
          Alcotest.test_case "loss costs time" `Quick test_loss_costs_time;
          Alcotest.test_case "zero-fault path costs nothing" `Quick
            test_zero_fault_path_costs_nothing;
          Alcotest.test_case "link-down recovery" `Quick test_link_down_recovery;
          Alcotest.test_case "permanent outage fails structurally" `Quick
            test_permanent_outage_fails_structurally;
        ] );
    ]
