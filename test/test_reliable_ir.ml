(* Firmware-compiled reliable delivery (Reliable_ir) against the closure
   layer: certificate sanity, and — the point of the module — behavioural
   parity. The lockstep ring in Reliable_flow puts one frame at a time on
   the fabric, so a seeded fault model hands both implementations the same
   per-frame verdicts; delivery outcomes and per-node protocol counters
   must then match exactly, across loss, corruption and crash/restart
   schedules. *)

module Time = Cni_engine.Time
module Params = Cni_machine.Params
module Faults = Cni_atm.Faults
module Verify = Cni_aih.Aih_verify
module Ir = Cni_aih.Aih_ir
module Nic = Cni_nic.Nic
module Reliable_ir = Cni_nic.Reliable_ir
module Flow = Cni_experiments.Reliable_flow

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Generated-firmware certificates                                     *)
(* ------------------------------------------------------------------ *)

let test_firmware_certs () =
  let budget = Params.line_rate_budget Params.default in
  (match Verify.verify ~cell_budget:budget (Reliable_ir.rx_program ~size:64) with
  | Error rjs -> Alcotest.failf "rx firmware rejected: %s" (Verify.explain_all rjs)
  | Ok c ->
      checkb "rx WCET fits the line-rate budget" true (c.Verify.wcet_nic_cycles <= budget);
      checkb "rx cert carries a per-byte bound" true (c.Verify.wcet_per_byte_milli > 0));
  match Verify.verify ~cell_budget:budget (Reliable_ir.tx_program ~size:64) with
  | Error rjs -> Alcotest.failf "tx firmware rejected: %s" (Verify.explain_all rjs)
  | Ok c ->
      (* the stamp is an episode handler: per-packet, no per-byte obligation *)
      checki "tx per-byte bound" 0 c.Verify.wcet_per_byte_milli

(* the rx program's cost is what line-rate admission is about: it must not
   scale with cluster size (the segment does, the WCET must not) *)
let test_rx_wcet_size_independent () =
  let wcet size =
    match Verify.verify (Reliable_ir.rx_program ~size) with
    | Ok c -> c.Verify.wcet_nic_cycles
    | Error rjs -> Alcotest.failf "rx/%d rejected: %s" size (Verify.explain_all rjs)
  in
  checki "same WCET at 2 and 256 nodes" (wcet 2) (wcet 256)

(* ------------------------------------------------------------------ *)
(* Parity: closure vs firmware                                         *)
(* ------------------------------------------------------------------ *)

let agree name (a : Flow.outcome) (b : Flow.outcome) =
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int))
    (name ^ ": delivered") a.Flow.delivered b.Flow.delivered;
  Array.iteri
    (fun i (ca : Flow.counters) ->
      let cb = b.Flow.per_node.(i) in
      checki (Printf.sprintf "%s: node %d retransmits" name i) ca.Flow.retransmits
        cb.Flow.retransmits;
      checki (Printf.sprintf "%s: node %d acks_tx" name i) ca.Flow.acks_tx cb.Flow.acks_tx;
      checki (Printf.sprintf "%s: node %d acks_rx" name i) ca.Flow.acks_rx cb.Flow.acks_rx;
      checki
        (Printf.sprintf "%s: node %d rx_duplicates" name i)
        ca.Flow.rx_duplicates cb.Flow.rx_duplicates)
    a.Flow.per_node;
  checki (name ^ ": checksum") a.Flow.checksum b.Flow.checksum

let parity name cfg =
  let a = Flow.run Flow.Closure cfg and b = Flow.run Flow.Firmware cfg in
  agree name a b;
  b

let test_parity_clean () =
  ignore (parity "clean 2-node" Flow.default);
  ignore
    (parity "clean 5-node ring"
       { Flow.default with Flow.nodes = 5; messages = 3; body_bytes = 200 })

let test_parity_standard_nic () =
  (* on the standard interface the firmware runs host-interpreted; the
     protocol must not care where it executes *)
  ignore (parity "clean standard NIC" { Flow.default with Flow.nic = `Standard })

let test_delivery_complete_under_loss () =
  let cfg =
    {
      Flow.default with
      Flow.messages = 10;
      faults = Some { Faults.none with Faults.seed = 3; cell_loss = 5e-3 };
    }
  in
  let o = Flow.run Flow.Firmware cfg in
  checki "every message delivered exactly once" (2 * 10) (List.length o.Flow.delivered)

let test_parity_loss_corrupt_sweep () =
  List.iter
    (fun (seed, loss, corrupt) ->
      let cfg =
        {
          Flow.default with
          Flow.messages = 12;
          faults =
            Some { Faults.none with Faults.seed; cell_loss = loss; cell_corrupt = corrupt };
        }
      in
      ignore (parity (Printf.sprintf "loss=%g corrupt=%g seed=%d" loss corrupt seed) cfg))
    [ (1, 1e-2, 0.); (2, 0., 1e-2); (3, 5e-3, 5e-3); (9, 2e-2, 1e-3) ]

let test_parity_qcheck =
  QCheck.Test.make ~count:20 ~name:"parity under random seeded loss/corruption"
    QCheck.(triple (int_bound 10_000) (int_bound 15) (int_bound 15))
    (fun (seed, loss_m, corrupt_m) ->
      (* probabilities up to 1.5e-2 per cell: lossy enough to force
         retransmissions and duplicate acks, far from the retry budget *)
      let cfg =
        {
          Flow.default with
          Flow.messages = 6;
          faults =
            Some
              {
                Faults.none with
                Faults.seed;
                cell_loss = float_of_int loss_m *. 1e-3;
                cell_corrupt = float_of_int corrupt_m *. 1e-3;
              };
        }
      in
      let a = Flow.run Flow.Closure cfg and b = Flow.run Flow.Firmware cfg in
      a.Flow.checksum = b.Flow.checksum)

let test_parity_crash_restart () =
  (* crash a receiver mid-flow without scrubbing the board: its window
     state survives, frames sent into the dead window are lost unjudged
     and a post-restart retransmission completes the flow. Sends ride a
     40 us pacing grid so both implementations have the same frame in
     flight when the window opens, and the window edges sit mid-slot,
     hundreds of microseconds from the 1 ms retransmission grid. *)
  List.iter
    (fun (name, victim, at_us, down_us) ->
      let schedule =
        [
          {
            Faults.e_at = Time.us at_us;
            e_node = victim;
            e_fault = Faults.Crash { scrub = false };
          };
          { Faults.e_at = Time.us (at_us + down_us); e_node = victim; e_fault = Faults.Restart };
        ]
      in
      let cfg =
        {
          Flow.default with
          Flow.messages = 6;
          pace = Some (Time.us 40);
          faults = Some { Faults.none with Faults.seed = 5; schedule };
        }
      in
      let o = parity name cfg in
      (* not vacuous: the dead window really cost a frame *)
      let retx = Array.fold_left (fun acc c -> acc + c.Flow.retransmits) 0 o.Flow.per_node in
      checki (name ^ ": exactly one frame died in the window") 1 retx)
    [
      (* node 1 receives node 0's flow over slots 0..200us; edges sit
         ~30us into a slot, past either implementation's ~15us round trip *)
      ("crash rx node1 @110us/80us down", 1, 110, 80);
      ("crash rx node1 @70us/60us down", 1, 70, 60);
      (* node 0 receives node 1's flow over slots 240..440us *)
      ("crash rx node0 @310us/80us down", 0, 310, 80);
    ]

let test_retransmission_happens () =
  let cfg =
    {
      Flow.default with
      Flow.messages = 20;
      faults = Some { Faults.none with Faults.seed = 2; cell_loss = 3e-2 };
    }
  in
  let o = Flow.run Flow.Firmware cfg in
  let total = Array.fold_left (fun acc c -> acc + c.Flow.retransmits) 0 o.Flow.per_node in
  checkb "loss at 3e-2 forces firmware retransmissions" true (total > 0)

(* Pin the parity checksum of one canonical faulty run: a change here means
   the protocol's observable behaviour changed, which must be deliberate. *)
let test_pinned_checksum () =
  let cfg =
    {
      Flow.default with
      Flow.messages = 12;
      faults = Some { Faults.none with Faults.seed = 17; cell_loss = 8e-3; cell_corrupt = 2e-3 };
    }
  in
  let a = Flow.run Flow.Closure cfg and b = Flow.run Flow.Firmware cfg in
  checki "closure and firmware agree" a.Flow.checksum b.Flow.checksum;
  checki "pinned reliable-firmware parity checksum" 430942308 b.Flow.checksum

let () =
  Alcotest.run "reliable_ir"
    [
      ( "certs",
        [
          Alcotest.test_case "generated firmware certificates" `Quick test_firmware_certs;
          Alcotest.test_case "rx WCET independent of cluster size" `Quick
            test_rx_wcet_size_independent;
        ] );
      ( "parity",
        [
          Alcotest.test_case "clean fabric" `Quick test_parity_clean;
          Alcotest.test_case "standard NIC (host-interpreted)" `Quick
            test_parity_standard_nic;
          Alcotest.test_case "delivery complete under loss" `Quick
            test_delivery_complete_under_loss;
          Alcotest.test_case "loss/corruption sweep" `Quick test_parity_loss_corrupt_sweep;
          QCheck_alcotest.to_alcotest test_parity_qcheck;
          Alcotest.test_case "crash/restart schedules" `Quick test_parity_crash_restart;
          Alcotest.test_case "loss forces retransmission" `Quick test_retransmission_happens;
          Alcotest.test_case "pinned parity checksum" `Quick test_pinned_checksum;
        ] );
    ]
