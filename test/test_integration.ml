(* End-to-end shape tests: the qualitative results the paper reports must
   hold on scaled-down runs — who wins, in which direction, and roughly by
   how much. These exercise the whole stack (engine, machine, ATM,
   PATHFINDER, NIC, DSM, applications, experiment runner). *)

module Time = Cni_engine.Time
module Params = Cni_machine.Params
module Mc = Cni_nic.Message_cache
module Jacobi = Cni_apps.Jacobi
module Water = Cni_apps.Water
module Cholesky = Cni_apps.Cholesky
module Sparse = Cni_apps.Sparse
module Runner = Cni_experiments.Runner
module Microbench = Cni_experiments.Microbench
module Report = Cni_experiments.Report

let check = Alcotest.check
let checkb = check Alcotest.bool

let sec t = Time.to_s_float t

(* small workloads with the same sharing patterns as the paper's *)
let jacobi cluster lrcs =
  ignore (Jacobi.run cluster lrcs { Jacobi.default_config with Jacobi.n = 128; iterations = 10 })

let water cluster lrcs =
  ignore (Water.run cluster lrcs { Water.default_config with Water.molecules = 64 })

let small_matrix = lazy (Sparse.stiffness_like ~n:360 ~dofs:3 ~seed:3)

let cholesky cluster lrcs =
  ignore (Cholesky.run cluster lrcs (Cholesky.default_config (Lazy.force small_matrix)))

let elapsed ~kind ~procs app = (Runner.run ~kind ~procs app).Runner.elapsed

(* ------------------------------------------------------------------ *)
(* Headline orderings                                                  *)
(* ------------------------------------------------------------------ *)

let test_cni_beats_standard_cholesky () =
  let c = elapsed ~kind:(Runner.cni ()) ~procs:4 cholesky in
  let s = elapsed ~kind:Runner.standard ~procs:4 cholesky in
  checkb "CNI faster on the fine-grained app" true (sec c < sec s)

let test_cni_beats_standard_water () =
  let c = elapsed ~kind:(Runner.cni ()) ~procs:4 water in
  let s = elapsed ~kind:Runner.standard ~procs:4 water in
  checkb "CNI no slower on water" true (sec c <= sec s *. 1.01)

let test_gap_ordering_matches_paper () =
  (* relative CNI gain: Jacobi < Cholesky (coarse vs fine grained) *)
  let gain app =
    let c = sec (elapsed ~kind:(Runner.cni ()) ~procs:4 app) in
    let s = sec (elapsed ~kind:Runner.standard ~procs:4 app) in
    s /. c
  in
  let gj = gain jacobi and gc = gain cholesky in
  checkb "Cholesky gains more than Jacobi" true (gc > gj)

let test_parallel_speedup_exists () =
  let t1 = elapsed ~kind:(Runner.cni ()) ~procs:1 water in
  let t4 = elapsed ~kind:(Runner.cni ()) ~procs:4 water in
  checkb "4 procs faster than 1" true (sec t4 < sec t1)

(* ------------------------------------------------------------------ *)
(* Mechanism ablations                                                 *)
(* ------------------------------------------------------------------ *)

let test_message_cache_helps () =
  let with_mc = elapsed ~kind:(Runner.cni ()) ~procs:4 cholesky in
  let without = elapsed ~kind:(Runner.cni ~mc_bytes:0 ()) ~procs:4 cholesky in
  checkb "message cache saves time" true (sec with_mc < sec without)

let test_aih_helps () =
  let with_aih = elapsed ~kind:(Runner.cni ()) ~procs:4 water in
  let without = elapsed ~kind:(Runner.cni ~aih:false ()) ~procs:4 water in
  checkb "on-board handlers save time" true (sec with_aih < sec without)

let test_invalidate_snoop_hurts_hit_ratio () =
  let hit mode =
    (Runner.run ~kind:(Runner.cni ~mc_mode:mode ()) ~procs:4 jacobi).Runner.hit_ratio
  in
  checkb "write-update keeps more buffers valid" true (hit Mc.Update > hit Mc.Invalidate)

let test_osiris_between () =
  (* the intermediate design point lands between the endpoints on the
     user-level messaging path (its DSM runs stay near the standard board:
     it still interrupts per packet, which is the CNI's point) *)
  let lat kind = Time.to_us_float (Microbench.latency ~kind ~bytes:2048 ()) in
  let c = lat (Runner.cni ~aih:false ()) in
  let o = lat Runner.osiris in
  let s = lat Runner.standard in
  checkb "CNI < OSIRIS" true (c < o);
  checkb "OSIRIS < standard" true (o < s)

let test_unrestricted_cells_help () =
  let restricted = elapsed ~kind:(Runner.cni ()) ~procs:4 cholesky in
  let params = { Params.default with Params.cell_payload_bytes = 1 lsl 26 } in
  let unrestricted =
    (Runner.run ~params ~kind:(Runner.cni ()) ~procs:4 cholesky).Runner.elapsed
  in
  checkb "fragmentation overhead is real (Table 5)" true (sec unrestricted < sec restricted)

(* ------------------------------------------------------------------ *)
(* Microbenchmark (Figure 14)                                          *)
(* ------------------------------------------------------------------ *)

let test_latency_monotonic_and_reduced () =
  let points = Microbench.sweep ~sizes:[ 0; 512; 4096 ] () in
  (match points with
  | [ p0; p1; p2 ] ->
      checkb "cni latency grows with size" true
        (p0.Microbench.cni_us < p1.Microbench.cni_us && p1.Microbench.cni_us < p2.Microbench.cni_us);
      checkb "standard latency grows with size" true
        (p0.Microbench.standard_us < p2.Microbench.standard_us);
      checkb "cni below standard everywhere" true
        (List.for_all (fun p -> p.Microbench.cni_us < p.Microbench.standard_us) points);
      (* the paper's headline: ~33% at 4 KB; accept a generous band *)
      checkb "4KB reduction in 20..60%" true
        (p2.Microbench.reduction_pct > 20.0 && p2.Microbench.reduction_pct < 60.0);
      (* the absolute gap grows with message size (the elided DMA scales) *)
      checkb "absolute saving grows with size" true
        (p2.Microbench.standard_us -. p2.Microbench.cni_us
        > p0.Microbench.standard_us -. p0.Microbench.cni_us)
  | _ -> Alcotest.fail "expected three points")

(* ------------------------------------------------------------------ *)
(* Determinism and accounting sanity                                   *)
(* ------------------------------------------------------------------ *)

let test_runs_deterministic () =
  let a = elapsed ~kind:(Runner.cni ()) ~procs:3 water in
  let b = elapsed ~kind:(Runner.cni ()) ~procs:3 water in
  check Alcotest.int "bit-identical simulated time" (Time.to_ps a) (Time.to_ps b)

let test_hit_ratio_bounds () =
  List.iter
    (fun procs ->
      let r = Runner.run ~kind:(Runner.cni ()) ~procs cholesky in
      checkb "ratio within [0,100]" true (r.Runner.hit_ratio >= 0.0 && r.Runner.hit_ratio <= 100.0))
    [ 1; 2; 4 ]

let test_mc_size_improves_hit_ratio () =
  let hit kb = (Runner.run ~kind:(Runner.cni ~mc_bytes:(kb * 1024) ()) ~procs:4 cholesky).Runner.hit_ratio in
  checkb "bigger cache, no worse ratio (fig 13 trend)" true (hit 512 >= hit 8 -. 1.0)

(* fault injection: a frame whose header fails Wire decoding must be dropped
   and counted at the board (rx_undecodable), never reach a handler and never
   raise out of the receive fiber *)
let test_corrupted_header_detected () =
  let module Cluster = Cni_cluster.Cluster in
  let module Node = Cni_cluster.Node in
  let module Fabric = Cni_atm.Fabric in
  let cluster : unit Cluster.t =
    Cluster.create ~nic_kind:(Runner.cni ()) ~nodes:2 ()
  in
  let nic1 = Node.nic (Cluster.node cluster 1) in
  let rejected = ref 0 in
  Cni_nic.Nic.set_default_handler nic1 (fun _ _ -> incr rejected);
  Cluster.run_app cluster (fun node ->
      if Node.id node = 0 then begin
        let header =
          Cni_nic.Wire.encode
            {
              Cni_nic.Wire.kind = 1;
              cacheable = false;
              has_data = false;
              src = 0;
              channel = 40;
              obj = 0;
              aux = 0;
            }
        in
        (* corrupt the magic *)
        Bytes.set header 0 '\xEE';
        Cni_nic.Nic.send (Node.nic node) ~dst:1 ~header ~body_bytes:0 ~data:Cni_nic.Nic.No_data
          ~payload:()
      end);
  Alcotest.(check int) "corrupted frame never reaches a handler" 0 !rejected;
  Alcotest.(check int) "counted as rx_undecodable" 1 (Cni_nic.Nic.rx_undecodable nic1);
  Alcotest.(check int) "not counted as unmatched" 0
    (Cni_nic.Nic.stats nic1).Cni_nic.Nic.unmatched

let test_report_rendering () =
  let r =
    Report.make ~id:"x" ~title:"t" ~columns:[ "a"; "bb" ] ~notes:[ "n" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let text = Report.to_text r in
  checkb "title present" true
    (try
       ignore (Str.search_forward (Str.regexp_string "== x: t ==") text 0);
       true
     with Not_found -> false);
  checkb "note present" true
    (try
       ignore (Str.search_forward (Str.regexp_string "note: n") text 0);
       true
     with Not_found -> false)

let test_report_csv () =
  let dir = Filename.temp_file "cni" "" in
  Sys.remove dir;
  let r = Report.make ~id:"csvtest" ~title:"t" ~columns:[ "a"; "b" ] [ [ "1"; "x,y" ] ] in
  Report.write_csv ~dir r;
  let ic = open_in (Filename.concat dir "csvtest.csv") in
  let l1 = input_line ic in
  let l2 = input_line ic in
  close_in ic;
  check Alcotest.string "header" "a,b" l1;
  check Alcotest.string "escaped row" "1,\"x,y\"" l2

let () =
  Alcotest.run "integration"
    [
      ( "orderings",
        [
          Alcotest.test_case "CNI beats standard (cholesky)" `Quick test_cni_beats_standard_cholesky;
          Alcotest.test_case "CNI no slower (water)" `Quick test_cni_beats_standard_water;
          Alcotest.test_case "gap ordering jacobi < cholesky" `Quick test_gap_ordering_matches_paper;
          Alcotest.test_case "parallel speedup exists" `Quick test_parallel_speedup_exists;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "message cache helps" `Quick test_message_cache_helps;
          Alcotest.test_case "AIH helps" `Quick test_aih_helps;
          Alcotest.test_case "invalidate snoop hurts" `Quick test_invalidate_snoop_hurts_hit_ratio;
          Alcotest.test_case "unrestricted cells help" `Quick test_unrestricted_cells_help;
          Alcotest.test_case "OSIRIS between endpoints" `Quick test_osiris_between;
        ] );
      ( "microbench",
        [ Alcotest.test_case "latency curves (fig 14)" `Quick test_latency_monotonic_and_reduced ]
      );
      ( "sanity",
        [
          Alcotest.test_case "deterministic" `Quick test_runs_deterministic;
          Alcotest.test_case "hit ratio bounds" `Quick test_hit_ratio_bounds;
          Alcotest.test_case "MC size monotonic-ish" `Quick test_mc_size_improves_hit_ratio;
          Alcotest.test_case "corrupted header detected" `Quick test_corrupted_header_detected;
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
          Alcotest.test_case "report CSV" `Quick test_report_csv;
        ] );
    ]
