(* Open-loop serving stack: arrival-process statistics under a fixed seed,
   histogram quantiles against a sorted-array oracle, scenario profile
   round-trips and rejection, and a deterministic 16-node serving smoke
   with its tail pinned. *)

module Time = Cni_engine.Time
module Nic = Cni_nic.Nic
module Arrival = Cni_experiments.Arrival
module Scenario = Cni_experiments.Scenario
module Kv_serve = Cni_apps.Kv_serve
module Hist = Cni_apps.Kv_serve.Hist

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string

let contains hay needle =
  try
    ignore (Str.search_forward (Str.regexp_string needle) hay 0);
    true
  with Not_found -> false

(* ------------------------------------------------------------------ *)
(* Arrival processes                                                   *)
(* ------------------------------------------------------------------ *)

let gap_stats kind ~seed ~n =
  let g = Arrival.create ~seed kind in
  let xs = Array.init n (fun _ -> Time.to_us_float (Arrival.next_gap g)) in
  let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. float_of_int n
  in
  (mean, sqrt var /. mean)

let test_poisson_stats () =
  (* 50k req/s -> mean gap 20 us, exponential -> CV 1 *)
  let mean, cv = gap_stats (Arrival.Poisson { rate_per_s = 50_000. }) ~seed:11 ~n:20_000 in
  checkb "mean gap within 3% of 1/rate" true (Float.abs (mean -. 20.) < 0.6);
  checkb "coefficient of variation ~1" true (Float.abs (cv -. 1.) < 0.05)

let test_bursty_stats () =
  let kind =
    Arrival.Bursty
      { on_rate_per_s = 200_000.; off_rate_per_s = 0.; mean_on_us = 200.; mean_off_us = 600. }
  in
  (* long-run rate = 200k * 200/(200+600) = 50k -> mean gap 20 us *)
  check (Alcotest.float 1e-9) "weighted mean rate" 50_000. (Arrival.mean_rate_per_s kind);
  let mean, cv = gap_stats kind ~seed:11 ~n:20_000 in
  checkb "mean gap within 10% of 1/mean-rate" true (Float.abs (mean -. 20.) < 2.);
  checkb "over-dispersed (CV > 1.5)" true (cv > 1.5)

let test_arrival_determinism () =
  let kind = Arrival.Poisson { rate_per_s = 10_000. } in
  let a = Arrival.create ~seed:3 kind and b = Arrival.create ~seed:3 kind in
  for _ = 1 to 1000 do
    checki "same seed, same gap" (Time.to_ps (Arrival.next_gap a))
      (Time.to_ps (Arrival.next_gap b))
  done;
  let c = Arrival.create ~seed:4 kind in
  let diff = ref false in
  for _ = 1 to 32 do
    if Time.to_ps (Arrival.next_gap a) <> Time.to_ps (Arrival.next_gap c) then diff := true
  done;
  checkb "different seed diverges" true !diff

let test_arrival_parse_roundtrip () =
  let kinds =
    [
      Arrival.Poisson { rate_per_s = 12_345.678 };
      Arrival.Bursty
        { on_rate_per_s = 1e5; off_rate_per_s = 0.5; mean_on_us = 33.3; mean_off_us = 66.6 };
    ]
  in
  List.iter
    (fun k ->
      match Arrival.kind_of_string (Arrival.kind_to_string k) with
      | Ok k' -> checkb "round-trip exact" true (k = k')
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    kinds;
  List.iter
    (fun s ->
      match Arrival.kind_of_string s with
      | Ok _ -> Alcotest.failf "accepted bad arrival %S" s
      | Error _ -> ())
    [ "poisson 0"; "poisson -3"; "poisson"; "bursty 1 2 3"; "uniform 5"; "" ]

let test_arrival_validate () =
  (match Arrival.validate_kind (Arrival.Poisson { rate_per_s = -1. }) with
  | Error [ _ ] -> ()
  | _ -> Alcotest.fail "negative rate accepted");
  match
    Arrival.validate_kind
      (Arrival.Bursty
         { on_rate_per_s = 0.; off_rate_per_s = -1.; mean_on_us = 0.; mean_off_us = 1. })
  with
  | Error errs -> checki "all three problems reported" 3 (List.length errs)
  | Ok () -> Alcotest.fail "invalid bursty accepted"

(* ------------------------------------------------------------------ *)
(* Histogram vs sorted-array oracle                                    *)
(* ------------------------------------------------------------------ *)

let oracle_quantile sorted q =
  let n = Array.length sorted in
  let rank = Stdlib.min n (Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int n)))) in
  sorted.(rank - 1)

let test_hist_exact_small () =
  let h = Hist.create () in
  for v = 0 to 31 do
    Hist.observe h v
  done;
  checki "count" 32 (Hist.count h);
  checki "min" 0 (Hist.min_value h);
  checki "max" 31 (Hist.max_value h);
  checki "p50 exact below 32" 15 (Hist.quantile h 0.5);
  checki "p100 exact" 31 (Hist.quantile h 1.0)

let test_hist_oracle_qcheck () =
  let gen =
    QCheck.make
      ~print:QCheck.Print.(list int)
      QCheck.Gen.(list_size (int_range 1 400) (oneof [ int_bound 100; int_bound 1_000_000_000 ]))
  in
  let prop xs =
    let h = Hist.create () in
    List.iter (Hist.observe h) xs;
    let sorted = Array.of_list (List.sort compare xs) in
    List.for_all
      (fun q ->
        let est = float_of_int (Hist.quantile h q) in
        let exact = float_of_int (oracle_quantile sorted q) in
        (* the estimate is an upper bound within one sub-bucket width *)
        est >= exact && est <= (exact *. (1. +. Hist.max_relative_error)) +. 1.)
      [ 0.5; 0.9; 0.99; 0.999; 1.0 ]
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"hist quantile within bucket width of oracle" gen prop)

let test_hist_buckets () =
  let h = Hist.create () in
  List.iter (Hist.observe h) [ 5; 5; 70; 100_000 ];
  let bs = Hist.buckets h in
  checki "three non-empty buckets" 3 (List.length bs);
  List.iter
    (fun (lo, hi, n) ->
      checkb "bounds ordered" true (lo <= hi);
      checkb "count positive" true (n > 0))
    bs;
  checki "total spread over buckets" 4 (List.fold_left (fun a (_, _, n) -> a + n) 0 bs)

(* ------------------------------------------------------------------ *)
(* Serving smoke                                                       *)
(* ------------------------------------------------------------------ *)

let serve_config ~rate =
  {
    Kv_serve.clients = 12;
    servers = 4;
    requests_per_client = 40;
    arrival =
      (fun client ->
        let g = Arrival.create ~seed:(100 + client) (Arrival.Poisson { rate_per_s = rate }) in
        fun () -> Arrival.next_gap g);
    value_bytes = 256;
    put_pct = 20;
    seed = 42;
    service_cycles = 400;
  }

let test_serving_smoke () =
  let r = Kv_serve.run ~nic_kind:(`Cni Nic.default_cni_options) (serve_config ~rate:20_000.) in
  checki "every request issued" 480 r.Kv_serve.requests;
  checki "every response collected" 480 r.Kv_serve.responses;
  checki "gets + puts = responses" 480 (r.Kv_serve.gets + r.Kv_serve.puts);
  checkb "some puts in the mix" true (r.Kv_serve.puts > 0);
  checkb "tail ordering holds" true
    (r.Kv_serve.p50_us <= r.Kv_serve.p99_us
    && r.Kv_serve.p99_us <= r.Kv_serve.p999_us
    && r.Kv_serve.p999_us <= r.Kv_serve.max_us);
  (* the simulator is deterministic, so the tail is pinned exactly: any
     drift here is a real behaviour change somewhere in the stack *)
  checki "p99 pinned (ns)" 34_815 (Hist.quantile r.Kv_serve.hist 0.99);
  Printf.printf "serving smoke p50=%.3f p99=%.3f p999=%.3f max=%.3f elapsed=%.1f\n%!"
    r.Kv_serve.p50_us r.Kv_serve.p99_us r.Kv_serve.p999_us r.Kv_serve.max_us
    r.Kv_serve.elapsed_us

(* ------------------------------------------------------------------ *)
(* Scenario profiles                                                   *)
(* ------------------------------------------------------------------ *)

let test_profile_roundtrip () =
  List.iter
    (fun p ->
      match Scenario.of_string (Scenario.to_string p) with
      | Ok p' ->
          checkb (Printf.sprintf "round-trip exact for %s" p.Scenario.name) true (p = p')
      | Error e -> Alcotest.failf "%s failed to re-parse: %s" p.Scenario.name e)
    Scenario.builtins

let test_builtins_valid () =
  List.iter
    (fun p ->
      (match Scenario.validate p with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "builtin %s invalid: %s" p.Scenario.name (String.concat "; " es));
      List.iter
        (fun (label, verdict) ->
          match verdict with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "builtin %s fails preflight %s: %s" p.Scenario.name label e)
        (Scenario.preflight p))
    Scenario.builtins

let test_profile_rejections () =
  let reject what p expected =
    match Scenario.validate p with
    | Ok () -> Alcotest.failf "%s accepted" what
    | Error es ->
        checkb
          (Printf.sprintf "%s names the problem (%s)" what (String.concat "; " es))
          true
          (List.exists (fun e -> contains e expected) es)
  in
  let d = Scenario.default in
  reject "empty name" d "name";
  reject "zero clients" { d with Scenario.name = "x"; clients = 0 } "clients";
  reject "put-pct 200" { d with Scenario.name = "x"; put_pct = 200 } "put-pct";
  reject "crash without restart"
    {
      d with
      Scenario.name = "x";
      faults =
        {
          Cni_atm.Faults.none with
          Cni_atm.Faults.schedule =
            [
              {
                Cni_atm.Faults.e_at = Time.us 100;
                e_node = 1;
                e_fault = Cni_atm.Faults.Crash { scrub = false };
              };
            ];
        };
    }
    "matching restart";
  (* a profile with several problems reports them all *)
  match Scenario.validate { d with Scenario.name = "BAD!"; clients = 0; put_pct = -4 } with
  | Ok () -> Alcotest.fail "multi-problem profile accepted"
  | Error es -> checkb "all three problems reported" true (List.length es >= 3)

let test_profile_parse_errors () =
  let parse_err s = match Scenario.of_string s with Ok _ -> None | Error e -> Some e in
  (match parse_err "name x\nclients twelve\n" with
  | Some e -> checkb "line number reported" true (String.length e >= 6 && String.sub e 0 6 = "line 2")
  | None -> Alcotest.fail "bad integer accepted");
  (match parse_err "name x\nflux 3\n" with
  | Some e -> checkb "unknown key rejected with line" true (String.sub e 0 6 = "line 2")
  | None -> Alcotest.fail "unknown key accepted");
  (match parse_err "clients 4\n" with
  | Some _ -> ()
  | None -> Alcotest.fail "nameless profile accepted");
  (* comments and blank lines are fine; unknown fields inside them are not parsed *)
  match Scenario.of_string "# a comment\n\nname ok # trailing comment\nservers 2\n" with
  | Ok p ->
      checks "name parsed" "ok" p.Scenario.name;
      checki "servers parsed" 2 p.Scenario.servers
  | Error e -> Alcotest.failf "comment handling broke: %s" e

let small_profile =
  {
    Scenario.default with
    Scenario.name = "pin-16";
    summary = "deterministic 16-node smoke for the pinned tail";
  }

let test_scenario_deterministic () =
  let a = Scenario.run small_profile and b = Scenario.run small_profile in
  check (Alcotest.float 0.) "p50 identical" a.Kv_serve.p50_us b.Kv_serve.p50_us;
  check (Alcotest.float 0.) "p99 identical" a.Kv_serve.p99_us b.Kv_serve.p99_us;
  check (Alcotest.float 0.) "p999 identical" a.Kv_serve.p999_us b.Kv_serve.p999_us;
  check (Alcotest.float 0.) "elapsed identical" a.Kv_serve.elapsed_us b.Kv_serve.elapsed_us;
  checki "interrupts identical" a.Kv_serve.host_interrupts b.Kv_serve.host_interrupts

let test_rx_policies_distinguished () =
  (* the acceptance bar: at high offered load the tail must tell the
     receive policies apart *)
  let poll = Scenario.run (Option.get (Scenario.find "hot-poll-16")) in
  let intr = Scenario.run (Option.get (Scenario.find "hot-interrupt-16")) in
  checki "poll run drained" poll.Kv_serve.requests poll.Kv_serve.responses;
  checki "interrupt run drained" intr.Kv_serve.requests intr.Kv_serve.responses;
  checkb "p99 tails differ between rx policies" true
    (Float.abs (poll.Kv_serve.p99_us -. intr.Kv_serve.p99_us) > 0.001);
  Printf.printf "hot-poll p99=%.3f hot-interrupt p99=%.3f\n%!" poll.Kv_serve.p99_us
    intr.Kv_serve.p99_us

let () =
  Alcotest.run "serving"
    [
      ( "arrival",
        [
          Alcotest.test_case "poisson stats" `Quick test_poisson_stats;
          Alcotest.test_case "bursty stats" `Quick test_bursty_stats;
          Alcotest.test_case "determinism" `Quick test_arrival_determinism;
          Alcotest.test_case "parse round-trip" `Quick test_arrival_parse_roundtrip;
          Alcotest.test_case "validate" `Quick test_arrival_validate;
        ] );
      ( "hist",
        [
          Alcotest.test_case "exact small values" `Quick test_hist_exact_small;
          Alcotest.test_case "oracle qcheck" `Quick test_hist_oracle_qcheck;
          Alcotest.test_case "buckets" `Quick test_hist_buckets;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "builtin round-trip" `Quick test_profile_roundtrip;
          Alcotest.test_case "builtins validate + preflight" `Quick test_builtins_valid;
          Alcotest.test_case "rejections" `Quick test_profile_rejections;
          Alcotest.test_case "parse errors" `Quick test_profile_parse_errors;
        ] );
      ( "serving",
        [
          Alcotest.test_case "16-node smoke" `Quick test_serving_smoke;
          Alcotest.test_case "deterministic scenario run" `Quick test_scenario_deterministic;
          Alcotest.test_case "rx policies distinguished" `Quick test_rx_policies_distinguished;
        ] );
    ]
