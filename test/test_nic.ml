(* Tests for the network interface layer: ADC rings, the wire header, the
   Message Cache (clock replacement, snooping), and the two NIC models on a
   live 2-node cluster. *)

module Time = Cni_engine.Time
module Engine = Cni_engine.Engine
module Params = Cni_machine.Params
module Ring = Cni_nic.Ring
module Wire = Cni_nic.Wire
module Mc = Cni_nic.Message_cache
module Nic = Cni_nic.Nic
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_fifo () =
  let r = Ring.create ~slots:4 () in
  checkb "push" true (Ring.try_push r 1);
  checkb "push" true (Ring.try_push r 2);
  checkb "pop 1" true (Ring.try_pop r = Some 1);
  checkb "pop 2" true (Ring.try_pop r = Some 2);
  checkb "empty" true (Ring.try_pop r = None)

let test_ring_capacity () =
  let r = Ring.create ~slots:2 () in
  checkb "1" true (Ring.try_push r 1);
  checkb "2" true (Ring.try_push r 2);
  checkb "full rejects" false (Ring.try_push r 3);
  checkb "is_full" true (Ring.is_full r);
  ignore (Ring.try_pop r);
  checkb "space again" true (Ring.try_push r 3)

let test_ring_blocking () =
  let eng = Engine.create () in
  let r = Ring.create ~slots:1 () in
  let produced = ref [] and consumed = ref [] in
  Engine.spawn eng (fun () ->
      for i = 1 to 3 do
        Ring.push r i;
        produced := i :: !produced
      done);
  Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        Engine.delay (Time.ns 100);
        let v = Ring.pop r in
        consumed := v :: !consumed
      done);
  Engine.run eng;
  check (Alcotest.list Alcotest.int) "all consumed in order" [ 1; 2; 3 ] (List.rev !consumed);
  let s = Ring.stats r in
  checki "pushes" 3 s.Ring.pushes;
  checki "pops" 3 s.Ring.pops;
  checkb "producer stalled on full ring" true (s.Ring.full_stalls > 0)

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)
(* ------------------------------------------------------------------ *)

let test_wire_roundtrip () =
  let h =
    { Wire.kind = 9; cacheable = true; has_data = true; src = 17; channel = 3; obj = 123456; aux = -7 }
  in
  let h' = Wire.decode (Wire.encode h) in
  checki "kind" h.Wire.kind h'.Wire.kind;
  checkb "cacheable" h.Wire.cacheable h'.Wire.cacheable;
  checkb "has_data" h.Wire.has_data h'.Wire.has_data;
  checki "src" h.Wire.src h'.Wire.src;
  checki "channel" h.Wire.channel h'.Wire.channel;
  checki "obj" h.Wire.obj h'.Wire.obj;
  checki "aux" h.Wire.aux h'.Wire.aux

let test_wire_bad_magic () =
  let b = Bytes.make Wire.header_bytes '\xFF' in
  Alcotest.check_raises "magic" (Invalid_argument "Wire.decode: bad magic") (fun () ->
      ignore (Wire.decode b));
  Alcotest.check_raises "short" (Invalid_argument "Wire.decode: short header") (fun () ->
      ignore (Wire.decode (Bytes.create 4)))

let test_wire_patterns () =
  let h kind channel =
    Wire.encode { Wire.kind; cacheable = false; has_data = false; src = 0; channel; obj = 0; aux = 0 }
  in
  let open Cni_pathfinder in
  checkb "any matches" true (Pattern.matches Wire.pattern_any (h 1 5));
  checkb "channel matches" true (Pattern.matches (Wire.pattern_channel ~channel:5) (h 1 5));
  checkb "channel rejects" false (Pattern.matches (Wire.pattern_channel ~channel:6) (h 1 5));
  checkb "channel+kind" true
    (Pattern.matches (Wire.pattern_channel_kind ~channel:5 ~kind:1) (h 1 5));
  checkb "kind rejects" false
    (Pattern.matches (Wire.pattern_channel_kind ~channel:5 ~kind:2) (h 1 5))

(* ------------------------------------------------------------------ *)
(* Message Cache                                                       *)
(* ------------------------------------------------------------------ *)

let test_mc_lookup_bind () =
  let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:(4 * 2048) ~mode:Mc.Update () in
  checki "capacity" 4 (Mc.capacity_pages mc);
  checkb "miss" false (Mc.lookup mc ~vpage:1);
  Mc.bind mc ~vpage:1;
  checkb "hit" true (Mc.lookup mc ~vpage:1);
  let s = Mc.stats mc in
  checki "hits" 1 s.Mc.hits;
  checki "misses" 1 s.Mc.misses;
  checki "binds" 1 s.Mc.binds;
  check (Alcotest.float 0.01) "ratio" 50.0 (Mc.hit_ratio mc)

let test_mc_clock_eviction () =
  let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:(2 * 2048) ~mode:Mc.Update () in
  Mc.bind mc ~vpage:1;
  Mc.bind mc ~vpage:2;
  Mc.bind mc ~vpage:3;
  (* second-chance clock over 2 slots: exactly one of the old pages was
     displaced, the newcomer is resident *)
  checkb "page 3 bound" true (Mc.contains mc ~vpage:3);
  let survivors = List.filter (fun p -> Mc.contains mc ~vpage:p) [ 1; 2 ] in
  checki "one old page survives" 1 (List.length survivors);
  checki "one eviction" 1 (Mc.stats mc).Mc.evictions;
  (* a page the clock hand just granted a second chance to is preferred over
     an unreferenced one on the next pass *)
  Mc.bind mc ~vpage:4;
  checkb "page 4 bound" true (Mc.contains mc ~vpage:4);
  checki "two evictions" 2 (Mc.stats mc).Mc.evictions

let test_mc_snoop_update_keeps () =
  let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:(4 * 2048) ~mode:Mc.Update () in
  Mc.bind mc ~vpage:3;
  (* a write-back covering pages 3..4 *)
  Mc.snoop mc ~addr:(3 * 2048) ~bytes:4096;
  checkb "binding survives (write-update)" true (Mc.contains mc ~vpage:3);
  checki "updates counted" 1 (Mc.stats mc).Mc.snoop_updates

let test_mc_snoop_invalidate_drops () =
  let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:(4 * 2048) ~mode:Mc.Invalidate () in
  Mc.bind mc ~vpage:3;
  Mc.snoop mc ~addr:((3 * 2048) + 100) ~bytes:8;
  checkb "binding dropped (invalidate)" false (Mc.contains mc ~vpage:3);
  checki "invalidations counted" 1 (Mc.stats mc).Mc.snoop_invalidates

let test_mc_snoop_multi_page_update () =
  let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:(8 * 2048) ~mode:Mc.Update () in
  List.iter (fun p -> Mc.bind mc ~vpage:p) [ 3; 4; 5 ];
  (* a write starting mid-page 3 and ending in page 5: all three pages are
     touched and updated in place *)
  Mc.snoop mc ~addr:((3 * 2048) + 10) ~bytes:(2 * 2048);
  List.iter (fun p -> checkb "binding survives" true (Mc.contains mc ~vpage:p)) [ 3; 4; 5 ];
  checki "one update per touched page" 3 (Mc.stats mc).Mc.snoop_updates

let test_mc_snoop_multi_page_invalidate () =
  let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:(8 * 2048) ~mode:Mc.Invalidate () in
  List.iter (fun p -> Mc.bind mc ~vpage:p) [ 3; 4; 5; 6 ];
  Mc.snoop mc ~addr:((3 * 2048) + 10) ~bytes:(2 * 2048);
  List.iter (fun p -> checkb "touched page dropped" false (Mc.contains mc ~vpage:p)) [ 3; 4; 5 ];
  checkb "untouched page kept" true (Mc.contains mc ~vpage:6);
  checki "one invalidation per touched page" 3 (Mc.stats mc).Mc.snoop_invalidates

let test_mc_clock_all_referenced () =
  (* every resident page has its reference bit set: the clock hand must strip
     second chances on a full revolution and still evict, not spin forever *)
  let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:(2 * 2048) ~mode:Mc.Update () in
  Mc.bind mc ~vpage:1;
  Mc.bind mc ~vpage:2;
  List.iter (fun p -> ignore (Mc.lookup mc ~vpage:p)) [ 1; 2 ];
  for p = 3 to 10 do
    Mc.bind mc ~vpage:p;
    checkb "newcomer resident" true (Mc.contains mc ~vpage:p)
  done;
  let bound = List.filter (fun p -> Mc.contains mc ~vpage:p) (List.init 10 (fun i -> i + 1)) in
  checkb "never over capacity" true (List.length bound <= 2);
  checki "one eviction per overflow bind" 8 (Mc.stats mc).Mc.evictions

let test_mc_unbind () =
  let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:(4 * 2048) ~mode:Mc.Update () in
  Mc.bind mc ~vpage:9;
  Mc.unbind mc ~vpage:9;
  checkb "gone" false (Mc.contains mc ~vpage:9);
  Mc.unbind mc ~vpage:9 (* idempotent *)

let test_mc_rebind_refreshes () =
  let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:2048 ~mode:Mc.Update () in
  Mc.bind mc ~vpage:1;
  Mc.bind mc ~vpage:1;
  checki "no double bind" 1 (Mc.stats mc).Mc.binds;
  Mc.bind mc ~vpage:2;
  checkb "capacity 1: replaced" true
    (Mc.contains mc ~vpage:2 && not (Mc.contains mc ~vpage:1))

let test_mc_clock_eviction_order () =
  (* with every reference bit set the hand strips bits in slot order and
     evicts the first slot it revisits — page 1; the newcomer leaves page 2
     resident but unreferenced *)
  let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:(2 * 2048) ~mode:Mc.Update () in
  Mc.bind mc ~vpage:1;
  Mc.bind mc ~vpage:2;
  Mc.bind mc ~vpage:3 (* hand sweeps: strips both bits, evicts slot 0 (page 1) *);
  checkb "page 1 evicted first (hand order)" false (Mc.contains mc ~vpage:1);
  checkb "page 2 survived on second chance" true (Mc.contains mc ~vpage:2);
  (* slots are now [3 referenced; 2 unreferenced] with the hand at page 2:
     the claim takes the unreferenced page immediately and the referenced
     one keeps its bit — no needless stripping past the victim *)
  Mc.bind mc ~vpage:4;
  checkb "referenced page 3 survives" true (Mc.contains mc ~vpage:3);
  checkb "unreferenced page 2 evicted" false (Mc.contains mc ~vpage:2);
  (* both slots referenced again with the hand back at slot 0: the sweep
     strips both bits and evicts the slot it revisits first — page 3 *)
  Mc.bind mc ~vpage:5;
  checkb "page 3 evicted on revisit (hand order)" false (Mc.contains mc ~vpage:3);
  checkb "page 4 survives" true (Mc.contains mc ~vpage:4)

let test_mc_claim_guard_exhaustion () =
  (* the guard bounds the sweep to two revolutions: even if reference bits
     are re-set behind the hand (pathological), claim_slot terminates and
     returns a slot. Simulate by re-referencing everything between binds. *)
  let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:(4 * 2048) ~mode:Mc.Update () in
  for p = 1 to 4 do
    Mc.bind mc ~vpage:p
  done;
  for round = 1 to 20 do
    (* keep every resident page hot, then bind a newcomer anyway *)
    List.iter (fun p -> ignore (Mc.lookup mc ~vpage:p)) (Mc.bound_pages mc);
    let newcomer = 100 + round in
    Mc.bind mc ~vpage:newcomer;
    checkb "guard forces an eviction" true (Mc.contains mc ~vpage:newcomer);
    checki "capacity held" 4 (List.length (Mc.bound_pages mc))
  done

let test_mc_rebind_after_evict () =
  (* an evicted page must be re-bindable into a coherent state: the stale
     slot must not resurrect, and the buffer map must point at the new slot *)
  let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:(2 * 2048) ~mode:Mc.Update () in
  Mc.bind mc ~vpage:1;
  Mc.bind mc ~vpage:2;
  Mc.bind mc ~vpage:3 (* evicts one of 1/2 *);
  let evicted = if Mc.contains mc ~vpage:1 then 2 else 1 in
  Mc.bind mc ~vpage:evicted (* bring it straight back *);
  checkb "rebound resident" true (Mc.contains mc ~vpage:evicted);
  checkb "lookup hits after rebind" true (Mc.lookup mc ~vpage:evicted);
  (* the slot array agrees: the page appears exactly once *)
  checki "exactly one slot holds it" 1
    (List.length (List.filter (fun p -> p = evicted) (Mc.bound_pages mc)));
  Mc.unbind mc ~vpage:evicted;
  checkb "unbind after rebind clean" false (Mc.contains mc ~vpage:evicted)

let test_mc_snoop_rtlb () =
  (* non-identity reverse translation: physical frame f maps to virtual page
     f+100. A write-back at physical addr 3*page must invalidate the buffer
     bound to VIRTUAL page 103, and must NOT touch virtual page 3. *)
  let page = 2048 in
  let mc =
    Mc.create
      ~phys_to_vpage:(fun addr -> (addr / page) + 100)
      ~page_bytes:page ~capacity_bytes:(8 * page) ~mode:Mc.Invalidate ()
  in
  Mc.bind mc ~vpage:103;
  Mc.bind mc ~vpage:3;
  Mc.snoop mc ~addr:(3 * page) ~bytes:8;
  checkb "translated page invalidated" false (Mc.contains mc ~vpage:103);
  checkb "untranslated page untouched" true (Mc.contains mc ~vpage:3);
  checki "one invalidation" 1 (Mc.stats mc).Mc.snoop_invalidates;
  (* a multi-page write-back translates every covered frame *)
  Mc.bind mc ~vpage:104;
  Mc.bind mc ~vpage:105;
  Mc.snoop mc ~addr:((4 * page) + 10) ~bytes:page;
  checkb "frame 4 -> vpage 104 dropped" false (Mc.contains mc ~vpage:104);
  checkb "frame 5 -> vpage 105 dropped" false (Mc.contains mc ~vpage:105)

(* property: after an arbitrary interleaving of bind/snoop/unbind, the buffer
   map ([contains]) and the slot array ([bound_pages]) agree exactly *)
let mc_map_slots_agree =
  let op =
    QCheck.(
      oneof
        [
          map (fun p -> `Bind p) (int_bound 30);
          map (fun p -> `Unbind p) (int_bound 30);
          map (fun (p, b) -> `Snoop (p, b)) (pair (int_bound 30) (int_range 1 5000));
          map (fun p -> `Lookup p) (int_bound 30);
        ])
  in
  QCheck.Test.make ~name:"buffer map agrees with slot array" ~count:300
    QCheck.(pair bool (list op))
    (fun (invalidate, ops) ->
      let mode = if invalidate then Mc.Invalidate else Mc.Update in
      let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:(3 * 2048) ~mode () in
      List.iter
        (function
          | `Bind p -> Mc.bind mc ~vpage:p
          | `Unbind p -> Mc.unbind mc ~vpage:p
          | `Snoop (p, b) -> Mc.snoop mc ~addr:(p * 2048) ~bytes:b
          | `Lookup p -> ignore (Mc.lookup mc ~vpage:p))
        ops;
      let slots = Mc.bound_pages mc in
      let by_map =
        List.sort compare
          (List.filter (fun p -> Mc.contains mc ~vpage:p) (List.init 31 Fun.id))
      in
      slots = by_map && List.length slots <= 3)

(* property: a bind is immediately visible (the clock never evicts the page
   it just inserted) *)
let mc_bind_visible =
  QCheck.Test.make ~name:"fresh binding always resident" ~count:300
    QCheck.(list (int_bound 40))
    (fun pages ->
      let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:(3 * 2048) ~mode:Mc.Update () in
      List.for_all
        (fun pg ->
          Mc.bind mc ~vpage:pg;
          Mc.contains mc ~vpage:pg)
        pages)

(* property: the buffer map never exceeds its capacity *)
let mc_capacity_respected =
  QCheck.Test.make ~name:"bindings never exceed capacity" ~count:200
    QCheck.(list (int_bound 50))
    (fun pages ->
      let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:(4 * 2048) ~mode:Mc.Update () in
      List.iter (fun p -> Mc.bind mc ~vpage:p) pages;
      let bound = List.filter (fun p -> Mc.contains mc ~vpage:p) (List.sort_uniq compare pages) in
      List.length bound <= 4)

(* ------------------------------------------------------------------ *)
(* NIC on a live cluster                                               *)
(* ------------------------------------------------------------------ *)

let channel = 11

let header ~src ~cacheable ~has_data =
  Wire.encode { Wire.kind = 1; cacheable; has_data; src; channel; obj = 0; aux = 0 }

(* send [count] data messages of [bytes] from node 0 to node 1, returning
   (cluster, per-message latencies) *)
let run_sends ~kind ~bytes ~count =
  let cluster : Time.t Cluster.t = Cluster.create ~nic_kind:kind ~nodes:2 () in
  let eng = Cluster.engine cluster in
  let latencies = ref [] in
  let wake = ref (fun () -> ()) in
  ignore
    (Nic.install_handler
       (Node.nic (Cluster.node cluster 1))
       ~pattern:(Wire.pattern_channel ~channel) ~code_bytes:64
       (fun ctx pkt ->
         if bytes > 0 then ctx.Nic.deliver_page ~vaddr:(1 lsl 21) ~bytes ~cacheable:false;
         latencies := Time.(Engine.now eng - pkt.Cni_atm.Fabric.payload) :: !latencies;
         !wake ()));
  Cluster.run_app cluster (fun node ->
      if Node.id node = 0 then
        for _ = 1 to count do
          Nic.send (Node.nic node) ~dst:1
            ~header:(header ~src:0 ~cacheable:true ~has_data:(bytes > 0))
            ~body_bytes:0
            ~data:
              (if bytes > 0 then Nic.Page { vaddr = 1 lsl 20; bytes; cacheable = true }
               else Nic.No_data)
            ~payload:(Engine.now eng);
          Node.blocking node (fun () ->
              Engine.suspend (fun resume -> wake := fun () -> resume ()))
        done);
  (cluster, List.rev !latencies)

let cni = `Cni Nic.default_cni_options

let test_nic_transmit_caching () =
  let cluster, lat = run_sends ~kind:cni ~bytes:2048 ~count:3 in
  (match lat with
  | [ l1; l2; l3 ] ->
      checkb "second send faster (MC hit)" true (l2 < l1);
      checki "steady state" (Time.to_ps l2) (Time.to_ps l3)
  | _ -> Alcotest.fail "expected 3 latencies");
  let nic0 = Node.nic (Cluster.node cluster 0) in
  let s = Nic.stats nic0 in
  checki "3 data packets" 3 s.Nic.tx_data_packets;
  checki "only the first DMAed" 2048 s.Nic.tx_dma_bytes;
  check (Alcotest.float 0.1) "hit ratio 2/3" (200. /. 3.) (Nic.network_cache_hit_ratio nic0)

let test_nic_standard_always_dmas () =
  let cluster, lat = run_sends ~kind:`Standard ~bytes:2048 ~count:3 in
  (match lat with
  | [ l1; l2; l3 ] ->
      checki "no warmup effect" (Time.to_ps l1) (Time.to_ps l2);
      checki "steady" (Time.to_ps l2) (Time.to_ps l3)
  | _ -> Alcotest.fail "expected 3 latencies");
  let s = Nic.stats (Node.nic (Cluster.node cluster 0)) in
  checki "every send DMAed" (3 * 2048) s.Nic.tx_dma_bytes

let test_nic_mc_disabled () =
  let kind = `Cni { Nic.default_cni_options with Nic.mc_bytes = 0 } in
  let cluster, _ = run_sends ~kind ~bytes:2048 ~count:3 in
  let nic0 = Node.nic (Cluster.node cluster 0) in
  checkb "no message cache" true (Nic.message_cache nic0 = None);
  checki "every send DMAed" (3 * 2048) (Nic.stats nic0).Nic.tx_dma_bytes

let test_nic_interrupt_vs_poll () =
  (* receiver host is idle (not waiting): CNI without AIH interrupts *)
  let kind = `Cni { Nic.default_cni_options with Nic.aih = false } in
  let cluster, _ = run_sends ~kind ~bytes:0 ~count:2 in
  let s1 = Nic.stats (Node.nic (Cluster.node cluster 1)) in
  checki "interrupts on idle host" 2 s1.Nic.interrupts;
  (* with AIH the board absorbs them *)
  let cluster, _ = run_sends ~kind:cni ~bytes:0 ~count:2 in
  let s1 = Nic.stats (Node.nic (Cluster.node cluster 1)) in
  checki "no interrupts under AIH" 0 s1.Nic.interrupts

let test_nic_standard_interrupts () =
  let cluster, _ = run_sends ~kind:`Standard ~bytes:0 ~count:4 in
  let s1 = Nic.stats (Node.nic (Cluster.node cluster 1)) in
  checki "interrupt per packet" 4 s1.Nic.interrupts

(* node 0 sends one empty frame per entry in [gaps], pausing that long after
   each send; the receiving host stays busy-idle so every wakeup crosses the
   configured receive policy. Returns (cluster, frames delivered). *)
let run_paced ~kind ~gaps =
  let cluster : Time.t Cluster.t = Cluster.create ~nic_kind:kind ~nodes:2 () in
  let eng = Cluster.engine cluster in
  let got = ref 0 in
  ignore
    (Nic.install_handler
       (Node.nic (Cluster.node cluster 1))
       ~pattern:(Wire.pattern_channel ~channel) ~code_bytes:64
       (fun _ _ -> incr got));
  Cluster.run_app cluster (fun node ->
      if Node.id node = 0 then
        List.iter
          (fun gap ->
            Nic.send (Node.nic node) ~dst:1
              ~header:(header ~src:0 ~cacheable:false ~has_data:false)
              ~body_bytes:0 ~data:Nic.No_data ~payload:(Engine.now eng);
            if Time.to_ps gap > 0 then Engine.delay gap)
          gaps);
  (cluster, !got)

let test_nic_rx_poll_policy () =
  let kind =
    `Cni { Nic.default_cni_options with Nic.aih = false; rx_policy = Nic.Rx_poll }
  in
  let cluster, got = run_paced ~kind ~gaps:(List.init 4 (fun _ -> Time.us 50)) in
  checki "all frames delivered" 4 got;
  let s = Nic.stats (Node.nic (Cluster.node cluster 1)) in
  checki "poll mode never interrupts" 0 s.Nic.interrupts;
  checki "one productive poll per frame" 4 s.Nic.polls;
  checkb "empty ring checks charged during the gaps" true (s.Nic.wasted_polls > 0)

let test_nic_rx_adaptive_transitions () =
  let kind =
    `Cni
      {
        Nic.default_cni_options with
        Nic.aih = false;
        rx_policy = Nic.Rx_adaptive Nic.default_rx_adaptive;
      }
  in
  (* a hot burst (2 us apart) must pull the estimator into poll mode; the
     closing 1 ms gap must push it back out to interrupt mode *)
  let gaps = List.init 8 (fun _ -> Time.us 2) @ [ Time.ms 1; Time.zero ] in
  let cluster, got = run_paced ~kind ~gaps in
  checki "all frames delivered" 10 got;
  let nic1 = Node.nic (Cluster.node cluster 1) in
  let s = Nic.stats nic1 in
  checkb "entered poll mode during the burst" true (s.Nic.mode_poll > 0);
  checkb "took interrupts while idle" true (s.Nic.mode_interrupt > 0);
  checkb "at least hot and cold transitions" true (s.Nic.mode_switches >= 2);
  checkb "long gap returns the board to interrupt mode" true
    (Nic.rx_mode nic1 = `Interrupt)

let test_nic_rx_batch_coalescing () =
  let kind which batch =
    `Cni
      { Nic.default_cni_options with Nic.aih = false; rx_policy = which; rx_batch = batch }
  in
  let burst = List.init 8 (fun _ -> Time.zero) in
  (* without coalescing: the seed behaviour, one interrupt per frame *)
  let cluster, got = run_paced ~kind:(kind Nic.Rx_interrupt 1) ~gaps:burst in
  checki "baseline delivers all" 8 got;
  let s1 = Nic.stats (Node.nic (Cluster.node cluster 1)) in
  checki "baseline interrupt per frame" 8 s1.Nic.interrupts;
  checki "baseline never coalesces" 0 s1.Nic.coalesced;
  (* rx_batch 8: one wakeup drains the backlog that built up behind it *)
  let cluster, got = run_paced ~kind:(kind Nic.Rx_interrupt 8) ~gaps:burst in
  checki "batched delivers all" 8 got;
  let s8 = Nic.stats (Node.nic (Cluster.node cluster 1)) in
  checkb "fewer interrupts than frames" true (s8.Nic.interrupts < 8);
  checkb "riders counted" true (s8.Nic.coalesced > 0);
  checki "every frame either interrupted or rode along" 8
    (s8.Nic.interrupts + s8.Nic.coalesced)

let test_nic_unmatched_counted () =
  let cluster : unit Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let hits = ref 0 in
  Nic.set_default_handler (Node.nic (Cluster.node cluster 1)) (fun _ _ -> incr hits);
  Cluster.run_app cluster (fun node ->
      if Node.id node = 0 then
        Nic.send (Node.nic node) ~dst:1
          ~header:(header ~src:0 ~cacheable:false ~has_data:false)
          ~body_bytes:0 ~data:Nic.No_data ~payload:());
  checki "default handler ran" 1 !hits;
  checki "unmatched counted" 1 (Nic.stats (Node.nic (Cluster.node cluster 1))).Nic.unmatched

let test_nic_handler_memory_accounting () =
  let cluster : unit Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let nic = Node.nic (Cluster.node cluster 0) in
  let before = Nic.handler_code_bytes nic in
  ignore
    (Nic.install_handler nic ~pattern:(Wire.pattern_channel ~channel:30) ~code_bytes:4096
       (fun _ _ -> ()));
  checki "code bytes tracked" (before + 4096) (Nic.handler_code_bytes nic);
  (* board memory is finite: 1 MB minus the Message Cache *)
  match
    Nic.install_handler nic ~pattern:(Wire.pattern_channel ~channel:31)
      ~code_bytes:(2 * 1024 * 1024) (fun _ _ -> ())
  with
  | _ -> Alcotest.fail "expected overflow failure"
  | exception Failure msg ->
      checkb "mentions board memory" true
        (try
           ignore (Str.search_forward (Str.regexp_string "board memory") msg 0);
           true
         with Not_found -> false)

let test_nic_install_validates_code_bytes () =
  let cluster : unit Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let nic = Node.nic (Cluster.node cluster 0) in
  List.iter
    (fun bad ->
      match
        Nic.install_handler nic ~pattern:(Wire.pattern_channel ~channel:32) ~code_bytes:bad
          (fun _ _ -> ())
      with
      | _ -> Alcotest.failf "code_bytes %d accepted" bad
      | exception Invalid_argument _ -> ())
    [ 0; -5 ];
  checki "nothing was charged" 0 (Nic.handler_code_bytes nic);
  (* the overflow diagnostic must tell the caller how much board memory is
     actually left *)
  ignore
    (Nic.install_handler nic ~pattern:(Wire.pattern_channel ~channel:33) ~code_bytes:1000
       (fun _ _ -> ()));
  let p = Nic.params nic in
  let mc = Params.(p.message_cache_bytes) in
  let free = Params.(p.nic_memory_bytes) - mc - 1000 in
  match
    Nic.install_handler nic ~pattern:(Wire.pattern_channel ~channel:34)
      ~code_bytes:(2 * 1024 * 1024) (fun _ _ -> ())
  with
  | _ -> Alcotest.fail "expected overflow failure"
  | exception Failure msg ->
      checkb
        (Printf.sprintf "message %S reports the %d free bytes" msg free)
        true
        (try
           ignore (Str.search_forward (Str.regexp_string (Printf.sprintf "(%d)" free)) msg 0);
           true
         with Not_found -> false)

let test_nic_board_memory_reclamation () =
  (* install/uninstall and channel open/close cycles must return the board's
     memory accounting exactly to its starting point: segments are
     whole-allocation, so any leak compounds until installs start failing *)
  let cluster : unit Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let nic = Node.nic (Cluster.node cluster 0) in
  let start = Nic.handler_code_bytes nic in
  for round = 1 to 3 do
    let h1 =
      Nic.install_handler nic ~pattern:(Wire.pattern_channel ~channel:35) ~code_bytes:512
        (fun _ _ -> ())
    in
    let h2 =
      Nic.install_handler nic ~pattern:(Wire.pattern_channel ~channel:36) ~code_bytes:4096
        (fun _ _ -> ())
    in
    let adc = Cni_nic.Adc.open_channel nic ~channel:37 () in
    checkb
      (Printf.sprintf "round %d: installs consumed memory" round)
      true
      (Nic.handler_code_bytes nic > start + 512 + 4096);
    Cni_nic.Adc.close adc;
    Nic.uninstall_handler nic h2;
    Nic.uninstall_handler nic h1;
    (* double uninstall must not double-free *)
    Nic.uninstall_handler nic h1;
    checki (Printf.sprintf "round %d: all memory reclaimed" round) start
      (Nic.handler_code_bytes nic)
  done

let test_osiris_profile () =
  (* OSIRIS: user-level sends (no kernel), but an interrupt per packet and a
     DMA for every transfer *)
  let cluster, lat = run_sends ~kind:(`Osiris Nic.default_osiris_options) ~bytes:2048 ~count:3 in
  (match lat with
  | [ l1; l2; l3 ] ->
      checki "no warm-up effect (no Message Cache)" (Time.to_ps l1) (Time.to_ps l2);
      checki "steady" (Time.to_ps l2) (Time.to_ps l3)
  | _ -> Alcotest.fail "expected 3 latencies");
  let s0 = Nic.stats (Node.nic (Cluster.node cluster 0)) in
  checki "every send DMAed" (3 * 2048) s0.Nic.tx_dma_bytes;
  checkb "no message cache" true (Nic.message_cache (Node.nic (Cluster.node cluster 0)) = None);
  let s1 = Nic.stats (Node.nic (Cluster.node cluster 1)) in
  checki "interrupt per packet" 3 s1.Nic.interrupts

let test_osiris_cheaper_than_standard () =
  let one kind =
    let _, lat = run_sends ~kind ~bytes:512 ~count:1 in
    List.hd lat
  in
  let o = one (`Osiris Nic.default_osiris_options) and s = one `Standard in
  checkb "user-level send beats kernel path" true (Time.to_ps o < Time.to_ps s)

let test_mc_hit_ratio_empty () =
  let mc = Mc.create ~page_bytes:2048 ~capacity_bytes:4096 ~mode:Mc.Update () in
  check (Alcotest.float 0.001) "no traffic = 0%" 0.0 (Mc.hit_ratio mc);
  checkb "no traffic = None" true (Mc.hit_ratio_opt mc = None);
  Mc.lookup mc ~vpage:1 |> ignore;
  Mc.bind mc ~vpage:1;
  Mc.lookup mc ~vpage:1 |> ignore;
  checkb "with traffic = Some" true (Mc.hit_ratio_opt mc = Some 50.0);
  Mc.reset_stats mc;
  check (Alcotest.float 0.001) "after reset back to 0" 0.0 (Mc.hit_ratio mc)

let test_nic_reply_path () =
  let cluster : string Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let got = ref "" in
  let wake = ref (fun () -> ()) in
  ignore
    (Nic.install_handler
       (Node.nic (Cluster.node cluster 1))
       ~pattern:(Wire.pattern_channel_kind ~channel ~kind:1) ~code_bytes:64
       (fun ctx pkt ->
         ctx.Nic.charge 50;
         ctx.Nic.reply ~dst:pkt.Cni_atm.Fabric.src
           ~header:
             (Wire.encode
                { Wire.kind = 2; cacheable = false; has_data = false; src = 1; channel; obj = 0; aux = 0 })
           ~body_bytes:8 ~data:Nic.No_data ~payload:"pong"));
  ignore
    (Nic.install_handler
       (Node.nic (Cluster.node cluster 0))
       ~pattern:(Wire.pattern_channel_kind ~channel ~kind:2) ~code_bytes:64
       (fun _ pkt ->
         got := pkt.Cni_atm.Fabric.payload;
         !wake ()));
  Cluster.run_app cluster (fun node ->
      if Node.id node = 0 then begin
        Nic.send (Node.nic node) ~dst:1
          ~header:(header ~src:0 ~cacheable:false ~has_data:false)
          ~body_bytes:8 ~data:Nic.No_data ~payload:"ping";
        Node.blocking node (fun () ->
            Engine.suspend (fun resume -> wake := fun () -> resume ()))
      end);
  check Alcotest.string "round trip" "pong" !got


(* ------------------------------------------------------------------ *)
(* ADC channels                                                        *)
(* ------------------------------------------------------------------ *)

module Adc = Cni_nic.Adc

let test_adc_roundtrip () =
  let cluster : int Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let rx = Adc.open_channel (Node.nic (Cluster.node cluster 1)) ~channel:21 () in
  let got = ref [] in
  Cluster.run_app cluster (fun node ->
      if Node.id node = 0 then begin
        let tx = Adc.open_channel (Node.nic node) ~channel:21 () in
        for i = 1 to 5 do
          Adc.send tx ~dst:1 i
        done
      end
      else
        for _ = 1 to 5 do
          let pkt = Node.blocking node (fun () -> Adc.recv rx) in
          got := pkt.Cni_atm.Fabric.payload :: !got
        done);
  check (Alcotest.list Alcotest.int) "in order" [ 1; 2; 3; 4; 5 ] (List.rev !got);
  checki "channel id" 21 (Adc.channel_id rx);
  checki "drained" 0 (Adc.backlog rx)

let test_adc_backpressure () =
  (* a 2-slot ring: the board stalls deliveries until the app consumes *)
  let cluster : int Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let rx = Adc.open_channel (Node.nic (Cluster.node cluster 1)) ~channel:22 ~slots:2 () in
  let got = ref 0 in
  Cluster.run_app cluster (fun node ->
      if Node.id node = 0 then begin
        let tx = Adc.open_channel (Node.nic node) ~channel:22 () in
        for i = 1 to 8 do
          Adc.send tx ~dst:1 i
        done
      end
      else
        for _ = 1 to 8 do
          (* slow consumer *)
          Node.work node 50_000;
          ignore (Node.blocking node (fun () -> Adc.recv rx));
          incr got
        done);
  checki "all delivered despite tiny ring" 8 !got

let test_adc_close_falls_through () =
  let cluster : int Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let rx = Adc.open_channel (Node.nic (Cluster.node cluster 1)) ~channel:23 () in
  Adc.close rx;
  let fallback = ref 0 in
  Nic.set_default_handler (Node.nic (Cluster.node cluster 1)) (fun _ _ -> incr fallback);
  Cluster.run_app cluster (fun node ->
      if Node.id node = 0 then begin
        let tx = Adc.open_channel (Node.nic node) ~channel:23 () in
        Adc.send tx ~dst:1 1
      end);
  checki "closed channel falls to default" 1 !fallback

(* Two channels on the same receiving node must deliver bulk data into
   DISTINCT posted buffers — the old code hard-wired one address for every
   channel, so concurrent channels clobbered each other's pages. The bus
   snooper observes where each DMA write actually lands. *)
let test_adc_two_channel_delivery () =
  let cluster : int Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let receiver = Cluster.node cluster 1 in
  let rx_a = Adc.open_channel (Node.nic receiver) ~channel:21 () in
  let rx_b = Adc.open_channel (Node.nic receiver) ~channel:22 () in
  let dma_writes = ref [] in
  Cni_machine.Bus.register_snooper (Node.bus receiver) (fun ~dir ~addr ~bytes:_ ->
      if dir = Cni_machine.Bus.Dma_to_memory then dma_writes := addr :: !dma_writes);
  Cluster.run_app cluster (fun node ->
      if Node.id node = 0 then begin
        let tx_a = Adc.open_channel (Node.nic node) ~channel:21 () in
        let tx_b = Adc.open_channel (Node.nic node) ~channel:22 () in
        let page = Nic.Page { vaddr = 1 lsl 20; bytes = 2048; cacheable = false } in
        Adc.send tx_a ~dst:1 ~data:page 1;
        Adc.send tx_b ~dst:1 ~data:page 2
      end
      else begin
        ignore (Node.blocking node (fun () -> Adc.recv rx_a));
        ignore (Node.blocking node (fun () -> Adc.recv rx_b))
      end);
  let addrs = List.sort_uniq compare !dma_writes in
  checki "two distinct delivery addresses" 2 (List.length addrs);
  checkb "channel buffers are per-channel" true
    (List.mem (Adc.buffer_base rx_a) addrs && List.mem (Adc.buffer_base rx_b) addrs);
  checkb "buffers differ" true (Adc.buffer_base rx_a <> Adc.buffer_base rx_b)

(* Bulk data handed to [Adc.send] must be charged on the wire exactly once:
   the same payload through the raw NIC send (which owns the exactly-once
   accounting) produces the same fabric byte count. *)
let test_adc_send_wire_accounting () =
  let wire_bytes ~send =
    let cluster : int Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
    let rx = Adc.open_channel (Node.nic (Cluster.node cluster 1)) ~channel:21 () in
    Cluster.run_app cluster (fun node ->
        if Node.id node = 0 then send node
        else ignore (Node.blocking node (fun () -> Adc.recv rx)));
    (Cni_atm.Fabric.stats (Cluster.fabric cluster)).Cni_atm.Fabric.wire_bytes
  in
  let bytes = 4096 in
  let page = Nic.Page { vaddr = 1 lsl 20; bytes; cacheable = false } in
  let via_adc =
    wire_bytes ~send:(fun node ->
        let tx = Adc.open_channel (Node.nic node) ~channel:21 () in
        Adc.send tx ~dst:1 ~data:page 7)
  in
  let via_nic =
    wire_bytes ~send:(fun node ->
        Nic.send (Node.nic node) ~dst:1
          ~header:
            (Wire.encode
               {
                 Wire.kind = 0;
                 cacheable = false;
                 has_data = true;
                 src = 0;
                 channel = 21;
                 obj = 0;
                 aux = 0;
               })
          ~body_bytes:0 ~data:page ~payload:7)
  in
  checki "ADC bulk send = raw send (data counted once)" via_nic via_adc;
  (* and the data actually dominates the frame: it cannot have been dropped
     or doubled (header-only is ~one cell; doubled would exceed 2x) *)
  checkb "frame carries the payload" true (via_adc >= bytes);
  checkb "payload not serialised twice" true (via_adc < 2 * bytes)

let test_adc_board_memory () =
  let cluster : int Cluster.t = Cluster.create ~nic_kind:cni ~nodes:1 () in
  let nic = Node.nic (Cluster.node cluster 0) in
  let before = Nic.handler_code_bytes nic in
  let ch = Adc.open_channel nic ~channel:24 ~slots:16 () in
  checki "ring accounted in board memory" (before + (16 * 64)) (Nic.handler_code_bytes nic);
  Adc.close ch;
  checki "close reclaims the segment" before (Nic.handler_code_bytes nic)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "nic"
    [
      ( "ring",
        [
          Alcotest.test_case "FIFO" `Quick test_ring_fifo;
          Alcotest.test_case "capacity" `Quick test_ring_capacity;
          Alcotest.test_case "blocking producer/consumer" `Quick test_ring_blocking;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "bad input" `Quick test_wire_bad_magic;
          Alcotest.test_case "patterns" `Quick test_wire_patterns;
        ] );
      ( "message-cache",
        [
          Alcotest.test_case "lookup/bind" `Quick test_mc_lookup_bind;
          Alcotest.test_case "clock eviction" `Quick test_mc_clock_eviction;
          Alcotest.test_case "snoop write-update" `Quick test_mc_snoop_update_keeps;
          Alcotest.test_case "snoop invalidate" `Quick test_mc_snoop_invalidate_drops;
          Alcotest.test_case "snoop spans pages (update)" `Quick test_mc_snoop_multi_page_update;
          Alcotest.test_case "snoop spans pages (invalidate)" `Quick
            test_mc_snoop_multi_page_invalidate;
          Alcotest.test_case "clock evicts with all bits set" `Quick test_mc_clock_all_referenced;
          Alcotest.test_case "clock eviction order" `Quick test_mc_clock_eviction_order;
          Alcotest.test_case "claim guard under all-hot slots" `Quick
            test_mc_claim_guard_exhaustion;
          Alcotest.test_case "rebind after evict" `Quick test_mc_rebind_after_evict;
          Alcotest.test_case "snoop reverse-translates (RTLB)" `Quick test_mc_snoop_rtlb;
          Alcotest.test_case "unbind" `Quick test_mc_unbind;
          Alcotest.test_case "rebind refreshes" `Quick test_mc_rebind_refreshes;
          qc mc_capacity_respected;
          qc mc_bind_visible;
          qc mc_map_slots_agree;
        ] );
      ( "nic",
        [
          Alcotest.test_case "transmit caching" `Quick test_nic_transmit_caching;
          Alcotest.test_case "standard always DMAs" `Quick test_nic_standard_always_dmas;
          Alcotest.test_case "MC disabled" `Quick test_nic_mc_disabled;
          Alcotest.test_case "interrupt vs poll vs AIH" `Quick test_nic_interrupt_vs_poll;
          Alcotest.test_case "standard interrupts per packet" `Quick test_nic_standard_interrupts;
          Alcotest.test_case "poll receive policy" `Quick test_nic_rx_poll_policy;
          Alcotest.test_case "adaptive mode transitions" `Quick test_nic_rx_adaptive_transitions;
          Alcotest.test_case "receive batch coalescing" `Quick test_nic_rx_batch_coalescing;
          Alcotest.test_case "unmatched packets" `Quick test_nic_unmatched_counted;
          Alcotest.test_case "handler memory accounting" `Quick test_nic_handler_memory_accounting;
          Alcotest.test_case "install validates code_bytes" `Quick
            test_nic_install_validates_code_bytes;
          Alcotest.test_case "board memory reclamation" `Quick test_nic_board_memory_reclamation;
          Alcotest.test_case "AIH reply path" `Quick test_nic_reply_path;
          Alcotest.test_case "OSIRIS profile" `Quick test_osiris_profile;
          Alcotest.test_case "OSIRIS beats standard send" `Quick test_osiris_cheaper_than_standard;
          Alcotest.test_case "MC hit ratio on empty" `Quick test_mc_hit_ratio_empty;
        ] );
      ( "adc",
        [
          Alcotest.test_case "roundtrip in order" `Quick test_adc_roundtrip;
          Alcotest.test_case "ring back-pressure" `Quick test_adc_backpressure;
          Alcotest.test_case "close falls through" `Quick test_adc_close_falls_through;
          Alcotest.test_case "two channels, distinct buffers" `Quick
            test_adc_two_channel_delivery;
          Alcotest.test_case "bulk data charged once" `Quick test_adc_send_wire_accounting;
          Alcotest.test_case "board memory accounting" `Quick test_adc_board_memory;
        ] );
    ]
