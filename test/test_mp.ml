(* Tests for the message-passing library: tagged matching, ordering,
   collectives, and its interaction with the two network interfaces. *)

module Time = Cni_engine.Time
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Nic = Cni_nic.Nic
module Mp = Cni_mp.Mp

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let cni = `Cni Nic.default_cni_options

let with_mp ~kind ~nodes f =
  let cluster : int Mp.envelope Cluster.t = Cluster.create ~nic_kind:kind ~nodes () in
  let eps = Mp.install cluster in
  Cluster.run_app cluster (fun node -> f (Cluster.engine cluster) eps.(Node.id node));
  (cluster, eps)

(* ------------------------------------------------------------------ *)
(* Point to point                                                      *)
(* ------------------------------------------------------------------ *)

let test_ping_pong () =
  let rtt = ref Time.zero in
  ignore
    (with_mp ~kind:cni ~nodes:2 (fun eng ep ->
         if Mp.rank ep = 0 then begin
           let t0 = Cni_engine.Engine.now eng in
           Mp.send ep ~dst:1 ~tag:1 42;
           let e = Mp.recv ep ~tag:2 () in
           rtt := Time.(Cni_engine.Engine.now eng - t0);
           checki "echoed value" 43 e.Mp.value
         end
         else begin
           let e = Mp.recv ep ~tag:1 () in
           checki "received" 42 e.Mp.value;
           checki "src" 0 e.Mp.src;
           Mp.send ep ~dst:0 ~tag:2 (e.Mp.value + 1)
         end));
  checkb "round trip took time" true (Time.to_ps !rtt > 0)

let test_tag_matching_out_of_order () =
  ignore
    (with_mp ~kind:cni ~nodes:2 (fun _ ep ->
         if Mp.rank ep = 0 then begin
           Mp.send ep ~dst:1 ~tag:10 100;
           Mp.send ep ~dst:1 ~tag:20 200;
           Mp.send ep ~dst:1 ~tag:10 101
         end
         else begin
           (* receive tag 20 first although it arrived second *)
           checki "tag 20" 200 (Mp.recv ep ~tag:20 ()).Mp.value;
           checki "tag 10 first" 100 (Mp.recv ep ~tag:10 ()).Mp.value;
           checki "tag 10 second (FIFO within tag)" 101 (Mp.recv ep ~tag:10 ()).Mp.value
         end))

let test_src_matching () =
  ignore
    (with_mp ~kind:cni ~nodes:3 (fun _ ep ->
         match Mp.rank ep with
         | 0 -> Mp.send ep ~dst:2 ~tag:5 111
         | 1 -> Mp.send ep ~dst:2 ~tag:5 222
         | _ ->
             (* take rank 1's message first by source matching *)
             checki "from rank 1" 222 (Mp.recv ep ~src:1 ~tag:5 ()).Mp.value;
             checki "then rank 0" 111 (Mp.recv ep ~tag:5 ()).Mp.value))

let test_self_send () =
  ignore
    (with_mp ~kind:cni ~nodes:1 (fun _ ep ->
         Mp.send ep ~dst:0 ~tag:3 7;
         checki "local delivery" 7 (Mp.recv ep ~tag:3 ()).Mp.value))

let test_try_recv_and_pending () =
  ignore
    (with_mp ~kind:cni ~nodes:2 (fun _ ep ->
         if Mp.rank ep = 0 then begin
           Mp.send ep ~dst:1 ~tag:1 1;
           Mp.send ep ~dst:1 ~tag:1 2;
           (* per-pair FIFO: when the sentinel arrives, both tag-1 messages
              are already in the mailbox *)
           Mp.send ep ~dst:1 ~tag:3 0
         end
         else begin
           checkb "nothing yet" true (Mp.try_recv ep ~tag:9 () = None);
           ignore (Mp.recv ep ~tag:3 ());
           checki "two pending" 2 (Mp.pending ep);
           checkb "probe takes first" true
             (match Mp.try_recv ep ~tag:1 () with Some e -> e.Mp.value = 1 | None -> false);
           checki "one left" 1 (Mp.pending ep);
           checkb "probe takes second" true
             (match Mp.try_recv ep ~tag:1 () with Some e -> e.Mp.value = 2 | None -> false);
           checki "drained" 0 (Mp.pending ep)
         end))

let test_reserved_tags_rejected () =
  ignore
    (with_mp ~kind:cni ~nodes:1 (fun _ ep ->
         (try
            Mp.send ep ~dst:0 ~tag:Mp.reserved_tag_base 0;
            Alcotest.fail "reserved tag accepted"
          with Invalid_argument _ -> ());
         try
           ignore (Mp.recv ep ~tag:(-1) ());
           Alcotest.fail "negative tag accepted"
         with Invalid_argument _ -> ()))

(* ------------------------------------------------------------------ *)
(* Collectives                                                         *)
(* ------------------------------------------------------------------ *)

let test_barrier_synchronizes () =
  let n = 5 in
  let arrive = Array.make n Time.zero and leave = Array.make n Time.zero in
  ignore
    (with_mp ~kind:cni ~nodes:n (fun eng ep ->
         let me = Mp.rank ep in
         (* stagger arrivals *)
         Cni_engine.Engine.delay (Time.us ((me + 1) * 100));
         arrive.(me) <- Cni_engine.Engine.now eng;
         Mp.barrier ep;
         leave.(me) <- Cni_engine.Engine.now eng));
  let max_arrive = Array.fold_left Time.max Time.zero arrive in
  Array.iteri
    (fun i l ->
      checkb (Printf.sprintf "rank %d left after the last arrival" i) true
        (Time.to_ps l >= Time.to_ps max_arrive))
    leave

let test_broadcast () =
  List.iter
    (fun n ->
      let got = Array.make n 0 in
      ignore
        (with_mp ~kind:cni ~nodes:n (fun _ ep ->
             let v = if Mp.rank ep = 2 mod n then 777 else -1 in
             got.(Mp.rank ep) <- Mp.broadcast ep ~root:(2 mod n) v));
      Array.iteri (fun i v -> checki (Printf.sprintf "n=%d rank %d" n i) 777 v) got)
    [ 1; 2; 3; 4; 7; 8 ]

let test_reduce () =
  let n = 6 in
  let result = ref 0 in
  ignore
    (with_mp ~kind:cni ~nodes:n (fun _ ep ->
         let r = Mp.reduce ep ~root:0 ~op:( + ) (Mp.rank ep + 1) in
         if Mp.rank ep = 0 then result := r));
  checki "sum 1..6" 21 !result

let test_allreduce () =
  List.iter
    (fun n ->
      let results = Array.make n 0 in
      ignore
        (with_mp ~kind:cni ~nodes:n (fun _ ep ->
             results.(Mp.rank ep) <- Mp.allreduce ep ~op:max (Mp.rank ep * 10)));
      Array.iteri
        (fun i v -> checki (Printf.sprintf "n=%d rank %d sees max" n i) ((n - 1) * 10) v)
        results)
    [ 1; 2; 4; 5; 8 ]

let test_collectives_compose () =
  (* many collectives in sequence must not cross tags *)
  let n = 4 in
  ignore
    (with_mp ~kind:cni ~nodes:n (fun _ ep ->
         for round = 1 to 10 do
           let s = Mp.allreduce ep ~op:( + ) 1 in
           checki "allreduce of ones" n s;
           Mp.barrier ep;
           let b = Mp.broadcast ep ~root:(round mod n) round in
           checki "broadcast round" round b
         done))

(* ------------------------------------------------------------------ *)
(* NIC-resident collectives                                            *)
(* ------------------------------------------------------------------ *)

let with_nic_coll ~kind ~nodes f =
  let cluster : int Mp.envelope Cluster.t = Cluster.create ~nic_kind:kind ~nodes () in
  let eps = Mp.install ~nic_collectives:true cluster in
  Cluster.run_app cluster (fun node -> f (Cluster.engine cluster) eps.(Node.id node));
  (cluster, eps)

let total_interrupts cluster ~nodes =
  let acc = ref 0 in
  for n = 0 to nodes - 1 do
    acc := !acc + (Nic.stats (Node.nic (Cluster.node cluster n))).Cni_nic.Nic.interrupts
  done;
  !acc

let test_nic_collectives_results () =
  (* the combining tree returns the same answers as the host-driven paths:
     non-zero roots (vrank rotation), non-commutative-looking folds (max),
     and many sequential episodes over one installation *)
  let n = 8 in
  let done_ = ref 0 in
  let cluster, _ =
    with_nic_coll ~kind:cni ~nodes:n (fun _ ep ->
        checkb "endpoint reports NIC-resident" true (Mp.nic_collective ep);
        let r = Mp.rank ep in
        checki "broadcast from root 3" 777 (Mp.broadcast ep ~root:3 (if r = 3 then 777 else -1));
        let s = Mp.reduce ep ~root:5 ~op:( + ) (r + 1) in
        if r = 5 then checki "reduce at root 5" 36 s;
        checki "allreduce sum" 36 (Mp.allreduce ep ~op:( + ) (r + 1));
        checki "allreduce max" 70 (Mp.allreduce ep ~op:max (r * 10));
        for round = 1 to 5 do
          Mp.barrier ep;
          checki "episodes stay in step" (n * round) (Mp.allreduce ep ~op:( + ) round)
        done;
        incr done_)
  in
  checki "every rank completed" n !done_;
  checki "zero host interrupts on CNI" 0 (total_interrupts cluster ~nodes:n)

let test_nic_barrier_synchronizes () =
  let n = 5 in
  let arrive = Array.make n Time.zero and leave = Array.make n Time.zero in
  ignore
    (with_nic_coll ~kind:cni ~nodes:n (fun eng ep ->
         let me = Mp.rank ep in
         Cni_engine.Engine.delay (Time.us ((me + 1) * 100));
         arrive.(me) <- Cni_engine.Engine.now eng;
         Mp.barrier ep;
         leave.(me) <- Cni_engine.Engine.now eng));
  let max_arrive = Array.fold_left Time.max Time.zero arrive in
  Array.iteri
    (fun i l ->
      checkb (Printf.sprintf "rank %d left after the last arrival" i) true
        (Time.to_ps l >= Time.to_ps max_arrive))
    leave

let test_nic_collectives_interrupt_profile () =
  (* the acceptance condition for the AIH mapping: a CNI episode costs zero
     host interrupts, the standard interface pays at least one per combining
     round (every tree packet interrupts its receiving host) *)
  let episode kind =
    let nodes = 4 in
    let cluster, _ =
      with_nic_coll ~kind ~nodes (fun _ ep ->
          for _ = 1 to 3 do
            Mp.barrier ep
          done)
    in
    total_interrupts cluster ~nodes
  in
  checki "CNI: zero interrupts across 3 barriers" 0 (episode cni);
  checkb "standard: at least one interrupt per round" true (episode `Standard >= 3)

let test_bulk_payload_path () =
  (* >= 1 KB rides as NIC bulk data: the Message Cache sees it *)
  let cluster : int Mp.envelope Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let eps = Mp.install cluster in
  Cluster.run_app cluster (fun node ->
      let ep = eps.(Node.id node) in
      if Mp.rank ep = 0 then
        for i = 1 to 4 do
          Mp.send ep ~dst:1 ~tag:1 ~bytes:4096 ~buffer:(1 lsl 25) i
        done
      else
        for _ = 1 to 4 do
          ignore (Mp.recv ep ~tag:1 ())
        done);
  let s = Nic.stats (Node.nic (Cluster.node cluster 0)) in
  checki "four bulk sends" 4 s.Cni_nic.Nic.tx_data_packets;
  checki "only the first DMAed (MC hits after)" 4096 s.Cni_nic.Nic.tx_dma_bytes

let test_small_payload_no_dma () =
  let cluster : int Mp.envelope Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let eps = Mp.install cluster in
  Cluster.run_app cluster (fun node ->
      let ep = eps.(Node.id node) in
      if Mp.rank ep = 0 then Mp.send ep ~dst:1 ~tag:1 ~bytes:64 1
      else ignore (Mp.recv ep ~tag:1 ()));
  let s = Nic.stats (Node.nic (Cluster.node cluster 0)) in
  checki "no bulk data" 0 s.Cni_nic.Nic.tx_data_packets;
  checki "no DMA" 0 s.Cni_nic.Nic.tx_dma_bytes

(* ------------------------------------------------------------------ *)
(* Reliability                                                         *)
(* ------------------------------------------------------------------ *)

(* Exactly-once delivery under random cell loss: whatever the seed and the
   loss rate (up to 1e-2 per cell), every send arrives exactly once — the
   retransmission timers recover lost frames and the receive windows
   suppress the duplicates that retransmission creates. *)
let prop_exactly_once_under_loss (seed, loss_frac) =
  let module Faults = Cni_atm.Faults in
  let loss = float_of_int loss_frac *. 1e-4 in
  let faults = { Faults.none with Faults.seed; Faults.cell_loss = loss } in
  let n = 3 and nmsgs = 8 in
  let cluster : int Mp.envelope Cluster.t =
    Cluster.create ~faults ~nic_kind:cni ~nodes:n ()
  in
  let eps = Mp.install cluster in
  let received = Hashtbl.create 64 in
  let leftover = ref (-1) in
  Cluster.run_app cluster (fun node ->
      let ep = eps.(Node.id node) in
      let me = Mp.rank ep in
      if me = 0 then begin
        for _ = 1 to (n - 1) * nmsgs do
          let e = Mp.recv ep ~tag:1 () in
          Hashtbl.replace received e.Mp.value
            (1 + Option.value (Hashtbl.find_opt received e.Mp.value) ~default:0)
        done;
        (* a duplicate that slipped past the window would sit in the mailbox *)
        leftover := Mp.pending ep
      end
      else
        for i = 1 to nmsgs do
          Mp.send ep ~dst:0 ~tag:1 ((me * 1000) + i)
        done);
  !leftover = 0
  && Hashtbl.length received = (n - 1) * nmsgs
  && Hashtbl.fold (fun _ count ok -> ok && count = 1) received true

let test_exactly_once_under_loss =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:15 ~name:"exactly-once under random loss"
       QCheck.(pair (int_range 0 100_000) (int_range 1 100))
       prop_exactly_once_under_loss)

(* ------------------------------------------------------------------ *)
(* Interfaces                                                          *)
(* ------------------------------------------------------------------ *)

let test_cni_faster_for_request_reply () =
  (* a blast is pipelined and both boards bottleneck on the same SAR
     processor; per-message *latency* is where the CNI wins, so measure an
     acknowledged exchange *)
  let run kind =
    let cluster : int Mp.envelope Cluster.t = Cluster.create ~nic_kind:kind ~nodes:2 () in
    let eps = Mp.install cluster in
    Cluster.run_app cluster (fun node ->
        let ep = eps.(Node.id node) in
        if Mp.rank ep = 0 then
          for i = 1 to 20 do
            (* same buffer every time: transmit caching territory *)
            Mp.send ep ~dst:1 ~tag:1 ~bytes:2048 ~buffer:(1 lsl 26) i;
            ignore (Mp.recv ep ~tag:2 ())
          done
        else
          for _ = 1 to 20 do
            let e = Mp.recv ep ~tag:1 () in
            Mp.send ep ~dst:0 ~tag:2 e.Mp.value
          done);
    Cluster.elapsed cluster
  in
  let c = run cni and s = run `Standard in
  checkb "CNI round trips faster" true (Time.to_ps c < Time.to_ps s)

let () =
  Alcotest.run "mp"
    [
      ( "point-to-point",
        [
          Alcotest.test_case "ping pong" `Quick test_ping_pong;
          Alcotest.test_case "tag matching out of order" `Quick test_tag_matching_out_of_order;
          Alcotest.test_case "source matching" `Quick test_src_matching;
          Alcotest.test_case "self send" `Quick test_self_send;
          Alcotest.test_case "try_recv / pending" `Quick test_try_recv_and_pending;
          Alcotest.test_case "reserved tags rejected" `Quick test_reserved_tags_rejected;
        ] );
      ( "collectives",
        [
          Alcotest.test_case "barrier synchronizes" `Quick test_barrier_synchronizes;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "allreduce" `Quick test_allreduce;
          Alcotest.test_case "collectives compose" `Quick test_collectives_compose;
        ] );
      ( "nic-collectives",
        [
          Alcotest.test_case "tree results match host paths" `Quick test_nic_collectives_results;
          Alcotest.test_case "tree barrier synchronizes" `Quick test_nic_barrier_synchronizes;
          Alcotest.test_case "interrupt profile CNI vs standard" `Quick
            test_nic_collectives_interrupt_profile;
        ] );
      ( "payloads",
        [
          Alcotest.test_case "bulk rides the MC path" `Quick test_bulk_payload_path;
          Alcotest.test_case "small stays inline" `Quick test_small_payload_no_dma;
        ] );
      ("reliability", [ test_exactly_once_under_loss ]);
      ( "interfaces",
        [ Alcotest.test_case "CNI faster request-reply" `Quick test_cni_faster_for_request_reply ]
      );
    ]
