(* Tests for the cluster layer: node time accounting (the paper's three
   categories), stolen-time handling, deadlock detection and the cluster
   aggregates. *)

module Time = Cni_engine.Time
module Engine = Cni_engine.Engine
module Sync = Cni_engine.Sync
module Params = Cni_machine.Params
module Nic = Cni_nic.Nic
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let p = Params.default
let cni = `Cni Nic.default_cni_options

let mk ?params nodes : unit Cluster.t = Cluster.create ?params ~nic_kind:cni ~nodes ()

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)
(* ------------------------------------------------------------------ *)

let test_work_is_computation () =
  let cluster = mk 1 in
  Cluster.run_app cluster (fun node -> Node.work node 1000);
  let r = Node.report (Cluster.node cluster 0) in
  checki "computation = 1000 cycles" (Time.to_ps (Params.cpu_cycles p 1000))
    (Time.to_ps r.Node.computation);
  checki "no overhead" 0 (Time.to_ps r.Node.synch_overhead);
  checki "no delay" 0 (Time.to_ps r.Node.synch_delay);
  checki "finish = computation" (Time.to_ps r.Node.computation) (Time.to_ps r.Node.finish_time)

let test_work_batches () =
  (* many work calls flush as one delay at the next interaction point *)
  let cluster = mk 1 in
  Cluster.run_app cluster (fun node ->
      for _ = 1 to 100 do
        Node.work node 10
      done;
      Node.flush_pending node;
      checki "accumulated exactly" (Time.to_ps (Params.cpu_cycles p 1000))
        (Time.to_ps (Engine.now (Cluster.engine cluster))))

let test_overhead_category () =
  let cluster = mk 1 in
  Cluster.run_app cluster (fun node ->
      Node.work node 500;
      Node.overhead_cycles node 300);
  let r = Node.report (Cluster.node cluster 0) in
  checki "overhead tracked" (Time.to_ps (Params.cpu_cycles p 300)) (Time.to_ps r.Node.synch_overhead);
  checki "computation tracked" (Time.to_ps (Params.cpu_cycles p 500)) (Time.to_ps r.Node.computation)

let test_blocking_category () =
  let cluster = mk 1 in
  let eng = Cluster.engine cluster in
  Cluster.run_app cluster (fun node ->
      let iv = Sync.Ivar.create () in
      Engine.at eng (Time.us 50) (fun () -> Sync.Ivar.fill iv ());
      Node.blocking node (fun () -> Sync.Ivar.read iv));
  let r = Node.report (Cluster.node cluster 0) in
  checki "wait accounted as delay" (Time.to_ps (Time.us 50)) (Time.to_ps r.Node.synch_delay)

let test_categories_partition_time () =
  let cluster = mk 1 in
  let eng = Cluster.engine cluster in
  Cluster.run_app cluster (fun node ->
      Node.work node 1000;
      Node.overhead_cycles node 200;
      let iv = Sync.Ivar.create () in
      Engine.at eng Time.(Engine.now eng + Time.us 7) (fun () -> Sync.Ivar.fill iv ());
      Node.blocking node (fun () -> Sync.Ivar.read iv);
      Node.work node 50);
  let r = Node.report (Cluster.node cluster 0) in
  let total = Time.(r.Node.computation + r.Node.synch_overhead + r.Node.synch_delay) in
  checki "categories sum to finish time" (Time.to_ps r.Node.finish_time) (Time.to_ps total)

let test_touch_charges_cache_traffic () =
  let cluster = mk 1 in
  Cluster.run_app cluster (fun node ->
      Node.touch node ~addr:0x10000 ~bytes:2048 ~write:false;
      Node.flush_pending node);
  let r = Node.report (Cluster.node cluster 0) in
  (* 64 cold line misses at 31 cycles each, plus TLB misses: well above the
     L1-hit floor of 64 cycles *)
  checkb "cold misses cost real time" true
    (Time.to_ps r.Node.computation > Time.to_ps (Params.cpu_cycles p 1000))

let test_touch_rereads_cheap () =
  let run twice =
    let cluster = mk 1 in
    Cluster.run_app cluster (fun node ->
        Node.touch node ~addr:0x10000 ~bytes:2048 ~write:false;
        if twice then Node.touch node ~addr:0x10000 ~bytes:2048 ~write:false);
    (Node.report (Cluster.node cluster 0)).Node.computation
  in
  let once = run false and twice = run true in
  (* the second pass hits L1: far less than double *)
  checkb "re-read much cheaper" true
    (Time.to_ps twice < Time.to_ps once + (Time.to_ps once / 2))

let test_flush_range_snoops_and_costs () =
  let cluster = mk 1 in
  let node = Cluster.node cluster 0 in
  let snooped = ref 0 in
  Cni_machine.Bus.register_snooper (Node.bus node) (fun ~dir ~addr:_ ~bytes:_ ->
      if dir = Cni_machine.Bus.Cpu_writeback then incr snooped);
  Cluster.run_app cluster (fun node ->
      Node.touch node ~addr:0x20000 ~bytes:512 ~write:true;
      Node.flush_range node ~addr:0x20000 ~bytes:512);
  checki "16 dirty lines snooped" 16 !snooped;
  let r = Node.report node in
  checkb "flush charged as overhead" true (Time.to_ps r.Node.synch_overhead > 0)

let test_stolen_time_drains () =
  (* protocol service while the host computes must appear as overhead and
     extend the node's finish time (the "steal" path of the standard NIC) *)
  let compute_cycles = 2_000_000 in
  let run ~senders =
    let cluster : unit Cluster.t = Cluster.create ~nic_kind:`Standard ~nodes:2 () in
    ignore
      (Nic.install_handler
         (Node.nic (Cluster.node cluster 0))
         ~pattern:Cni_nic.Wire.pattern_any ~code_bytes:64
         (fun ctx _ -> ctx.Nic.charge 500));
    Cluster.run_app cluster (fun node ->
        if Node.id node = 0 then Node.work node compute_cycles
        else if senders then
          for _ = 1 to 5 do
            Nic.send (Node.nic node) ~dst:0
              ~header:
                (Cni_nic.Wire.encode
                   {
                     Cni_nic.Wire.kind = 1;
                     cacheable = false;
                     has_data = false;
                     src = 1;
                     channel = 0;
                     obj = 0;
                     aux = 0;
                   })
              ~body_bytes:0 ~data:Nic.No_data ~payload:();
            Node.work node 20_000
          done);
    Node.report (Cluster.node cluster 0)
  in
  let quiet = run ~senders:false and noisy = run ~senders:true in
  checkb "stolen service extends finish" true
    (Time.to_ps noisy.Node.finish_time > Time.to_ps quiet.Node.finish_time);
  checkb "stolen service is overhead" true
    (Time.to_ps noisy.Node.synch_overhead > Time.to_ps quiet.Node.synch_overhead);
  (* at least 5 interrupts' worth of host time was stolen *)
  checkb "at least 5 interrupts stolen" true
    (Time.to_ps noisy.Node.synch_overhead >= 5 * Time.to_ps p.Params.interrupt_latency)

let test_deadlock_detected () =
  let cluster = mk 2 in
  match
    Cluster.run_app cluster (fun node ->
        if Node.id node = 0 then
          (* waits forever: nobody fills the ivar *)
          Node.blocking node (fun () ->
              let iv : unit Sync.Ivar.t = Sync.Ivar.create () in
              Sync.Ivar.read iv))
  with
  | () -> Alcotest.fail "expected deadlock failure"
  | exception Cluster.Deadlock { unfinished; crashed } ->
      checkb "names the stuck node" true (unfinished = [ 0 ]);
      checkb "no crashed casualties" true (crashed = [])

(* ------------------------------------------------------------------ *)
(* Cluster aggregates                                                  *)
(* ------------------------------------------------------------------ *)

let test_elapsed_is_slowest () =
  let cluster = mk 3 in
  Cluster.run_app cluster (fun node -> Node.work node ((Node.id node + 1) * 1000));
  checki "slowest node wins" (Time.to_ps (Params.cpu_cycles p 3000))
    (Time.to_ps (Cluster.elapsed cluster))

let test_overheads_sum_nodes () =
  let cluster = mk 2 in
  Cluster.run_app cluster (fun node ->
      Node.work node 100;
      Node.overhead_cycles node 50);
  let o = Cluster.overheads cluster in
  checki "computation summed" (Time.to_ps (Params.cpu_cycles p 200)) (Time.to_ps o.Cluster.computation);
  checki "overhead summed" (Time.to_ps (Params.cpu_cycles p 100)) (Time.to_ps o.Cluster.synch_overhead)

let test_cluster_construction () =
  let cluster = mk 4 in
  checki "size" 4 (Cluster.size cluster);
  checkb "is cni" true (Cluster.is_cni cluster);
  checkb "nic kinds" true (Nic.is_cni (Node.nic (Cluster.node cluster 2)));
  let std : unit Cluster.t = Cluster.create ~nic_kind:`Standard ~nodes:2 () in
  checkb "standard" false (Cluster.is_cni std);
  Alcotest.check_raises "zero nodes" (Invalid_argument "Cluster.create: need at least one node")
    (fun () -> ignore (mk 0))

let test_run_twice_independent_clusters () =
  (* two identical clusters produce identical simulated times (determinism
     at the cluster level) *)
  let run () =
    let cluster = mk 3 in
    Cluster.run_app cluster (fun node ->
        Node.work node 1234;
        Node.touch node ~addr:0x400 ~bytes:256 ~write:true);
    Time.to_ps (Cluster.elapsed cluster)
  in
  checki "deterministic" (run ()) (run ())

let () =
  Alcotest.run "cluster"
    [
      ( "accounting",
        [
          Alcotest.test_case "work is computation" `Quick test_work_is_computation;
          Alcotest.test_case "work batches" `Quick test_work_batches;
          Alcotest.test_case "overhead category" `Quick test_overhead_category;
          Alcotest.test_case "blocking is delay" `Quick test_blocking_category;
          Alcotest.test_case "categories partition time" `Quick test_categories_partition_time;
          Alcotest.test_case "touch charges cache traffic" `Quick test_touch_charges_cache_traffic;
          Alcotest.test_case "re-reads cheap (cache model live)" `Quick test_touch_rereads_cheap;
          Alcotest.test_case "flush snoops and costs" `Quick test_flush_range_snoops_and_costs;
          Alcotest.test_case "stolen time drains" `Quick test_stolen_time_drains;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "elapsed = slowest" `Quick test_elapsed_is_slowest;
          Alcotest.test_case "overheads summed" `Quick test_overheads_sum_nodes;
          Alcotest.test_case "construction" `Quick test_cluster_construction;
          Alcotest.test_case "determinism" `Quick test_run_twice_independent_clusters;
        ] );
    ]
