(* Application correctness: each benchmark must compute the same answer on
   any processor count and NIC configuration, and the sparse substrate must
   satisfy its algebraic invariants. *)

module Cluster = Cni_cluster.Cluster
module Nic = Cni_nic.Nic
module Space = Cni_dsm.Space
module Lrc = Cni_dsm.Lrc
module Jacobi = Cni_apps.Jacobi
module Water = Cni_apps.Water
module Cholesky = Cni_apps.Cholesky
module Sparse = Cni_apps.Sparse
module Partition = Cni_apps.Partition

let check = Alcotest.check
let checkb = check Alcotest.bool
let checki = check Alcotest.int

let with_cluster ~kind ~nodes f =
  let cluster = Cluster.create ~nic_kind:kind ~nodes () in
  let space = Space.create ~nprocs:nodes ~page_bytes:(Cluster.params cluster).page_bytes in
  let lrcs = Lrc.install cluster space () in
  f cluster lrcs

let cni = `Cni Nic.default_cni_options

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)
(* ------------------------------------------------------------------ *)

let test_partition_covers () =
  List.iter
    (fun (items, procs) ->
      let total = ref 0 in
      let prev_hi = ref 0 in
      for me = 0 to procs - 1 do
        let lo, hi = Partition.range ~items ~procs ~me in
        checki "contiguous" !prev_hi lo;
        prev_hi := hi;
        total := !total + (hi - lo)
      done;
      checki "covers all items" items !total)
    [ (10, 3); (1024, 32); (7, 8); (1, 1); (100, 7) ]

let partition_balanced =
  QCheck.Test.make ~name:"partition blocks balanced within one item" ~count:300
    QCheck.(pair (int_range 1 2000) (int_range 1 64))
    (fun (items, procs) ->
      let sizes =
        List.init procs (fun me -> Partition.count ~items ~procs ~me)
      in
      let mn = List.fold_left min max_int sizes and mx = List.fold_left max 0 sizes in
      mx - mn <= 1 && List.fold_left ( + ) 0 sizes = items)

let supernode_columns_nest =
  QCheck.Test.make ~name:"supernode columns shrink by one" ~count:30
    QCheck.(pair (int_range 20 120) (int_range 1 3))
    (fun (n, dofs) ->
      let a = Sparse.stiffness_like ~n ~dofs ~seed:5 in
      let l = Sparse.symbolic a in
      let starts = Sparse.supernodes l in
      let len j = l.Sparse.colptr.(j + 1) - l.Sparse.colptr.(j) in
      let ok = ref true in
      Array.iteri
        (fun k s ->
          let stop = if k + 1 < Array.length starts then starts.(k + 1) else l.Sparse.n in
          for j = s + 1 to stop - 1 do
            if len j <> len (j - 1) - 1 then ok := false
          done)
        starts;
      !ok)

(* ------------------------------------------------------------------ *)
(* Jacobi                                                              *)
(* ------------------------------------------------------------------ *)

let jacobi_checksum ~kind ~nodes ~n =
  with_cluster ~kind ~nodes (fun cluster lrcs ->
      let config = { Jacobi.default_config with n; iterations = 3 } in
      (Jacobi.run cluster lrcs config).Jacobi.checksum)

let test_jacobi_deterministic () =
  let seq = jacobi_checksum ~kind:cni ~nodes:1 ~n:32 in
  let par = jacobi_checksum ~kind:cni ~nodes:4 ~n:32 in
  check (Alcotest.float 1e-9) "4-proc matches sequential" seq par;
  let std = jacobi_checksum ~kind:`Standard ~nodes:4 ~n:32 in
  check (Alcotest.float 1e-9) "standard NIC same values" seq std

let test_jacobi_nontrivial () =
  let s = jacobi_checksum ~kind:cni ~nodes:2 ~n:32 in
  checkb "boundary heat diffused into interior" true (s > 100.0)

let test_jacobi_odd_procs () =
  let seq = jacobi_checksum ~kind:cni ~nodes:1 ~n:30 in
  let par = jacobi_checksum ~kind:cni ~nodes:7 ~n:30 in
  check (Alcotest.float 1e-9) "7 procs, n not divisible" seq par

(* ------------------------------------------------------------------ *)
(* Water                                                               *)
(* ------------------------------------------------------------------ *)

let water_checksum ~kind ~nodes ~molecules =
  with_cluster ~kind ~nodes (fun cluster lrcs ->
      let config = { Water.default_config with molecules; steps = 2 } in
      (Water.run cluster lrcs config).Water.checksum)

let test_water_deterministic () =
  let seq = water_checksum ~kind:cni ~nodes:1 ~molecules:27 in
  let par = water_checksum ~kind:cni ~nodes:4 ~molecules:27 in
  (* force accumulation order differs across schedules: tolerance, not
     bitwise equality *)
  checkb "4-proc close to sequential" true
    (abs_float (seq -. par) /. (abs_float seq +. 1.0) < 1e-9)

let test_water_rejects_narrow_records () =
  with_cluster ~kind:cni ~nodes:1 (fun cluster lrcs ->
      try
        ignore
          (Water.run cluster lrcs
             { Water.default_config with Water.molecules = 8; doubles_per_molecule = 3 });
        Alcotest.fail "narrow record accepted"
      with Invalid_argument _ -> ())

let test_water_standard_matches () =
  let a = water_checksum ~kind:cni ~nodes:2 ~molecules:27 in
  let b = water_checksum ~kind:`Standard ~nodes:2 ~molecules:27 in
  checkb "configs agree" true (abs_float (a -. b) /. (abs_float a +. 1.0) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Sparse substrate                                                    *)
(* ------------------------------------------------------------------ *)

let test_sparse_generator_valid () =
  let a = Sparse.stiffness_like ~n:200 ~dofs:3 ~seed:7 in
  Sparse.validate a;
  checki "order" 200 a.Sparse.n;
  checkb "has off-diagonal entries" true (Sparse.nnz a > 200)

let test_sparse_generator_spd () =
  (* diagonal dominance was built in: check numerically on a dense copy *)
  let a = Sparse.stiffness_like ~n:60 ~dofs:2 ~seed:3 in
  let d = Sparse.to_dense_symmetric a in
  for i = 0 to 59 do
    let sum = ref 0.0 in
    for j = 0 to 59 do
      if i <> j then sum := !sum +. abs_float d.(i).(j)
    done;
    if not (d.(i).(i) > !sum) then Alcotest.failf "row %d not diagonally dominant" i
  done

let test_symbolic_contains_a () =
  let a = Sparse.stiffness_like ~n:120 ~dofs:3 ~seed:1 in
  let l = Sparse.symbolic a in
  Sparse.validate l;
  checkb "fill-in adds entries" true (Sparse.nnz l >= Sparse.nnz a);
  (* every A entry must appear in L *)
  for j = 0 to a.Sparse.n - 1 do
    for p = a.Sparse.colptr.(j) to a.Sparse.colptr.(j + 1) - 1 do
      let i = a.Sparse.rowidx.(p) in
      let found = ref false in
      for q = l.Sparse.colptr.(j) to l.Sparse.colptr.(j + 1) - 1 do
        if l.Sparse.rowidx.(q) = i then found := true
      done;
      if not !found then Alcotest.failf "A entry (%d,%d) missing from L" i j
    done
  done

let test_etree_parents_increase () =
  let a = Sparse.stiffness_like ~n:150 ~dofs:3 ~seed:2 in
  let parent = Sparse.etree a in
  Array.iteri
    (fun j p -> if p <> -1 && p <= j then Alcotest.failf "parent(%d)=%d not > j" j p)
    parent

let test_supernodes_partition () =
  let a = Sparse.stiffness_like ~n:150 ~dofs:3 ~seed:2 in
  let l = Sparse.symbolic a in
  let starts = Sparse.supernodes l in
  checki "first supernode at 0" 0 starts.(0);
  Array.iteri
    (fun k s -> if k > 0 && s <= starts.(k - 1) then Alcotest.fail "starts not increasing")
    starts;
  checkb "supernodes amalgamate columns" true (Array.length starts < l.Sparse.n)

let test_permute_preserves_matrix () =
  let a = Sparse.stiffness_like ~n:40 ~dofs:2 ~seed:9 in
  (* a deterministic shuffle *)
  let perm = Array.init 40 (fun i -> (i * 7) mod 40) in
  let b = Sparse.permute a ~perm in
  Sparse.validate b;
  checki "same nnz" (Sparse.nnz a) (Sparse.nnz b);
  let da = Sparse.to_dense_symmetric a and db = Sparse.to_dense_symmetric b in
  for i = 0 to 39 do
    for j = 0 to 39 do
      if db.(i).(j) <> da.(perm.(i)).(perm.(j)) then
        Alcotest.failf "permuted entry (%d,%d) mismatch" i j
    done
  done

let test_permute_rejects_bad () =
  let a = Sparse.stiffness_like ~n:10 ~dofs:1 ~seed:1 in
  (try
     ignore (Sparse.permute a ~perm:(Array.make 10 0));
     Alcotest.fail "duplicate accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Sparse.permute a ~perm:[| 0; 1 |]);
    Alcotest.fail "short perm accepted"
  with Invalid_argument _ -> ()

let test_rcm_is_permutation_and_reduces_bandwidth () =
  let a = Sparse.stiffness_like ~n:180 ~dofs:3 ~seed:4 in
  (* scramble first so there is bandwidth to recover *)
  let scramble = Array.init 180 (fun i -> (i * 77) mod 180) in
  let b = Sparse.permute a ~perm:scramble in
  let perm = Sparse.rcm b in
  check (Alcotest.list Alcotest.int) "is a permutation"
    (List.init 180 (fun i -> i))
    (List.sort compare (Array.to_list perm));
  let c = Sparse.permute b ~perm in
  checkb "bandwidth reduced" true (Sparse.bandwidth c < Sparse.bandwidth b);
  (* ordering must not change the numerics: factor and compare checksums *)
  let sum v = Array.fold_left (fun acc x -> acc +. abs_float x) 0.0 v in
  let ra = sum (Cholesky.reference_factor c) in
  checkb "factorization still works" true (ra > 0.0 && Float.is_finite ra)

let test_rcm_improves_fill () =
  let a = Sparse.stiffness_like ~n:180 ~dofs:3 ~seed:4 in
  let scramble = Array.init 180 (fun i -> (i * 77) mod 180) in
  let b = Sparse.permute a ~perm:scramble in
  let fill m = Sparse.nnz (Sparse.symbolic m) in
  let c = Sparse.permute b ~perm:(Sparse.rcm b) in
  checkb "RCM cuts fill on a scrambled matrix" true (fill c < fill b)

(* reference factorization must satisfy L * L^T = A *)
let test_reference_factor_correct () =
  let a = Sparse.stiffness_like ~n:80 ~dofs:2 ~seed:11 in
  let l = Sparse.symbolic a in
  let values = Cholesky.reference_factor a in
  let n = a.Sparse.n in
  let dense_l = Array.make_matrix n n 0.0 in
  for j = 0 to n - 1 do
    for p = l.Sparse.colptr.(j) to l.Sparse.colptr.(j + 1) - 1 do
      dense_l.(l.Sparse.rowidx.(p)).(j) <- values.(p)
    done
  done;
  let da = Sparse.to_dense_symmetric a in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        s := !s +. (dense_l.(i).(k) *. dense_l.(j).(k))
      done;
      if abs_float (!s -. da.(i).(j)) > 1e-6 *. (abs_float da.(i).(j) +. 1.0) then
        Alcotest.failf "LL^T mismatch at (%d,%d): %g vs %g" i j !s da.(i).(j)
    done
  done

(* ------------------------------------------------------------------ *)
(* Cholesky on the cluster                                             *)
(* ------------------------------------------------------------------ *)

let cholesky_checksum ~kind ~nodes a =
  with_cluster ~kind ~nodes (fun cluster lrcs ->
      (Cholesky.run cluster lrcs (Cholesky.default_config a)).Cholesky.checksum)

let reference_checksum a =
  let values = Cholesky.reference_factor a in
  Array.fold_left (fun acc v -> acc +. abs_float v) 0.0 values

let test_cholesky_parallel_matches_reference () =
  let a = Sparse.stiffness_like ~n:120 ~dofs:3 ~seed:5 in
  let expect = reference_checksum a in
  let got1 = cholesky_checksum ~kind:cni ~nodes:1 a in
  let got4 = cholesky_checksum ~kind:cni ~nodes:4 a in
  check (Alcotest.float 1e-6) "1 proc matches reference" expect got1;
  check (Alcotest.float 1e-6) "4 procs match reference" expect got4

let test_cholesky_standard_matches () =
  let a = Sparse.stiffness_like ~n:120 ~dofs:3 ~seed:5 in
  let expect = reference_checksum a in
  let got = cholesky_checksum ~kind:`Standard ~nodes:3 a in
  check (Alcotest.float 1e-6) "standard NIC matches reference" expect got

let () =
  Alcotest.run "apps"
    [
      ( "partition",
        [
          Alcotest.test_case "covers contiguously" `Quick test_partition_covers;
          QCheck_alcotest.to_alcotest partition_balanced;
        ] );
      ( "jacobi",
        [
          Alcotest.test_case "deterministic across procs/NICs" `Quick test_jacobi_deterministic;
          Alcotest.test_case "computes heat flow" `Quick test_jacobi_nontrivial;
          Alcotest.test_case "odd processor counts" `Quick test_jacobi_odd_procs;
        ] );
      ( "water",
        [
          Alcotest.test_case "close to sequential" `Quick test_water_deterministic;
          Alcotest.test_case "standard matches CNI" `Quick test_water_standard_matches;
          Alcotest.test_case "rejects narrow records" `Quick test_water_rejects_narrow_records;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "generator valid CSC" `Quick test_sparse_generator_valid;
          Alcotest.test_case "generator SPD" `Quick test_sparse_generator_spd;
          Alcotest.test_case "symbolic contains A" `Quick test_symbolic_contains_a;
          Alcotest.test_case "etree parents increase" `Quick test_etree_parents_increase;
          Alcotest.test_case "supernodes partition columns" `Quick test_supernodes_partition;
          Alcotest.test_case "reference LL^T = A" `Quick test_reference_factor_correct;
          Alcotest.test_case "permute preserves the matrix" `Quick test_permute_preserves_matrix;
          Alcotest.test_case "permute validation" `Quick test_permute_rejects_bad;
          Alcotest.test_case "RCM reduces bandwidth" `Quick
            test_rcm_is_permutation_and_reduces_bandwidth;
          Alcotest.test_case "RCM improves fill" `Quick test_rcm_improves_fill;
          QCheck_alcotest.to_alcotest supernode_columns_nest;
        ] );
      ( "cholesky",
        [
          Alcotest.test_case "parallel matches reference" `Quick
            test_cholesky_parallel_matches_reference;
          Alcotest.test_case "standard NIC matches" `Quick test_cholesky_standard_matches;
        ] );
    ]
