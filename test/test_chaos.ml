(* Node crash/restart chaos: the fault schedule drives real crashes, the
   cluster recovers end to end, and every failure mode is structured — a
   crashed peer yields Peer_dead, a stuck run trips the quiescence
   watchdog, an open-loop receive times out. Never a hang. *)

module Time = Cni_engine.Time
module Engine = Cni_engine.Engine
module Faults = Cni_atm.Faults
module Reliable = Cni_nic.Reliable
module Nic = Cni_nic.Nic
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Mp = Cni_mp.Mp
module Collectives = Cni_mp.Collectives
module Chaos = Cni_experiments.Chaos

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let cni = `Cni Nic.default_cni_options

(* small closed-loop workload shared by the recovery tests *)
let dsm ?(seed = 7) ~crashes ~down () =
  Chaos.run_dsm ~seed ~procs:4 ~n:64 ~iterations:4 ~crashes ~down ()

let dsm_clean_checksum = lazy (dsm ~crashes:0 ~down:(Time.us 150) ()).Chaos.checksum

(* ------------------------------------------------------------------ *)
(* Closed-loop recovery                                                *)
(* ------------------------------------------------------------------ *)

let test_dsm_recovers () =
  let m = dsm ~crashes:2 ~down:(Time.us 300) () in
  checkb "run completed" true m.Chaos.completed;
  check Alcotest.string "outcome ok" "ok" m.Chaos.outcome;
  checki "both crashes fired" 2 m.Chaos.crashes;
  checki "both restarts fired" 2 m.Chaos.restarts;
  checkb "revived boards saw traffic again" true (m.Chaos.recoveries >= 1);
  check (Alcotest.float 0.0) "fault-free checksum reproduced"
    (Lazy.force dsm_clean_checksum) m.Chaos.checksum

let test_dsm_recovers_scrubbed () =
  let m = Chaos.run_dsm ~procs:4 ~n:64 ~iterations:4 ~scrub:true ~crashes:2
      ~down:(Time.us 300) ()
  in
  checkb "scrubbed run completed" true m.Chaos.completed;
  check (Alcotest.float 0.0) "checksum survives board scrubs"
    (Lazy.force dsm_clean_checksum) m.Chaos.checksum

let test_chaos_deterministic () =
  let run () = dsm ~seed:11 ~crashes:2 ~down:(Time.us 300) () in
  checkb "identical metrics across two invocations" true (compare (run ()) (run ()) = 0);
  let ring () = Chaos.run_ring ~seed:11 ~nodes:4 ~rounds:12 ~crashes:2 ~down:(Time.us 200) () in
  checkb "ring metrics deterministic too" true (compare (ring ()) (ring ()) = 0)

(* random schedule x the closed-loop app: whatever the fault timing, the
   run either completes with the fault-free checksum (exactly-once
   delivery across the crashes) or returns a structured failure — the
   property call returning at all proves the watchdog bounded it *)
let dsm_qcheck =
  QCheck.Test.make ~count:6 ~name:"random schedule: exactly-once or clean failure"
    QCheck.(triple (int_range 0 1000) (int_range 0 2) (int_range 60 500))
    (fun (seed, crashes, down_us) ->
      let m = dsm ~seed ~crashes ~down:(Time.us down_us) () in
      if m.Chaos.completed then
        m.Chaos.outcome = "ok" && m.Chaos.checksum = Lazy.force dsm_clean_checksum
      else m.Chaos.outcome <> "ok")

(* open loop: the ring degrades by timing rounds out; duplicate delivery
   would inflate the checksum past the fault-free sum *)
let ring_qcheck =
  let clean =
    lazy (Chaos.run_ring ~nodes:4 ~rounds:12 ~crashes:0 ~down:(Time.us 150) ()).Chaos.checksum
  in
  QCheck.Test.make ~count:6 ~name:"ring degrades without hanging or duplicating"
    QCheck.(pair (int_range 0 1000) (int_range 1 3))
    (fun (seed, crashes) ->
      let m = Chaos.run_ring ~seed ~nodes:4 ~rounds:12 ~crashes ~down:(Time.us 200) () in
      m.Chaos.completed && m.Chaos.checksum <= Lazy.force clean)

(* ------------------------------------------------------------------ *)
(* Board state across scrubbed crashes                                 *)
(* ------------------------------------------------------------------ *)

let test_scrub_cycles_preserve_board_memory () =
  (* three scrub crash/restart cycles against node 1 while node 0 keeps
     sending: the install-log replay must restore the wiped handlers and
     the parked-descriptor re-send must keep delivery exactly-once *)
  let cycles = 3 in
  let schedule =
    List.concat
      (List.init cycles (fun k ->
           let at = Time.(us 100 + (us 600 * k)) in
           [
             { Faults.e_at = at; e_node = 1; e_fault = Faults.Crash { scrub = true } };
             { Faults.e_at = Time.(at + us 200); e_node = 1; e_fault = Faults.Restart };
           ]))
  in
  let faults = { Faults.none with Faults.schedule } in
  let cluster : int Mp.envelope Cluster.t = Cluster.create ~faults ~nic_kind:cni ~nodes:2 () in
  let eps = Mp.install cluster in
  let nic1 = Node.nic (Cluster.node cluster 1) in
  let code_bytes = Nic.handler_code_bytes nic1 in
  checkb "handlers charge board memory" true (code_bytes > 0);
  let got = ref 0 in
  Cluster.run_app ~watchdog:(Time.s 1) cluster (fun node ->
      let ep = eps.(Node.id node) in
      if Mp.rank ep = 0 then
        for r = 0 to 5 do
          Mp.send ep ~dst:1 ~tag:r (r * 7);
          Engine.delay (Time.us 300)
        done
      else
        for r = 0 to 5 do
          got := !got + (Mp.recv ep ~tag:r ()).Mp.value
        done);
  checki "every message delivered exactly once across the crashes" 105 !got;
  checki "board memory restored by the install-log replay" code_bytes
    (Nic.handler_code_bytes nic1);
  checki "one epoch per restart" cycles (Nic.epoch nic1)

(* ------------------------------------------------------------------ *)
(* Collectives around a crash                                          *)
(* ------------------------------------------------------------------ *)

let test_collective_parity_between_crashes () =
  (* a scrub crash/restart cycle that falls between two allreduce
     episodes: both episodes must produce the fault-free result *)
  let run ~faulty =
    let faults =
      if not faulty then Faults.none
      else
        {
          Faults.none with
          Faults.schedule =
            [
              { Faults.e_at = Time.us 300; e_node = 2; e_fault = Faults.Crash { scrub = true } };
              { Faults.e_at = Time.us 600; e_node = 2; e_fault = Faults.Restart };
            ];
        }
    in
    let cluster : int Cluster.t = Cluster.create ~faults ~nic_kind:cni ~nodes:4 () in
    let eps = Collectives.install ~inject:Fun.id ~project:Fun.id cluster in
    let sums = Array.make 4 (0, 0) in
    Cluster.run_app ~watchdog:(Time.s 1) cluster (fun node ->
        let r = Node.id node in
        let ep = eps.(r) in
        let a = Collectives.allreduce ep ~op:( + ) (r + 1) in
        Engine.delay (Time.us 1000);
        let b = Collectives.allreduce ep ~op:( + ) ((r + 1) * 10) in
        sums.(r) <- (a, b));
    sums
  in
  Alcotest.(check (array (pair int int)))
    "episodes straddling the crash match the fault-free run" (run ~faulty:false)
    (run ~faulty:true)

(* ------------------------------------------------------------------ *)
(* Structured failure, never a hang                                    *)
(* ------------------------------------------------------------------ *)

let test_watchdog_fires_on_deliberate_deadlock () =
  (* both ranks wait on a tag nobody sends while a self-rearming timer
     keeps the event queue busy: without the watchdog this spins forever *)
  let cluster : int Mp.envelope Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let eps = Mp.install cluster in
  let eng = Cluster.engine cluster in
  let rec tick () = Engine.after eng (Time.us 50) tick in
  tick ();
  match
    Cluster.run_app ~watchdog:(Time.ms 1) cluster (fun node ->
        ignore (Mp.recv eps.(Node.id node) ~tag:9 ()))
  with
  | () -> Alcotest.fail "expected Quiescence_timeout"
  | exception Engine.Quiescence_timeout { limit; _ } ->
      checki "fired at the configured limit" (Time.to_ps (Time.ms 1)) (Time.to_ps limit)

let test_peer_dead_mid_send () =
  (* node 1 crashes and never restarts; node 0's send must exhaust its
     budget and surface Peer_dead — not Delivery_failed, not a hang *)
  let faults =
    {
      Faults.none with
      Faults.schedule = [ { Faults.e_at = Time.us 50; e_node = 1; e_fault = Faults.Crash { scrub = false } } ];
    }
  in
  let reliability =
    { Reliable.default with Reliable.timeout = Time.us 50; max_tries = 4; max_rto = Time.us 400 }
  in
  let cluster : int Mp.envelope Cluster.t =
    Cluster.create ~faults ~reliability ~nic_kind:cni ~nodes:2 ()
  in
  let eps = Mp.install cluster in
  match
    Cluster.run_app ~watchdog:(Time.s 1) cluster (fun node ->
        let ep = eps.(Node.id node) in
        if Mp.rank ep = 0 then begin
          Engine.delay (Time.us 100);
          Mp.send ep ~dst:1 ~tag:1 5
        end
        else ignore (Mp.recv ep ~tag:1 ()))
  with
  | () -> Alcotest.fail "expected Peer_dead"
  | exception Engine.Fiber_failure (_, Reliable.Peer_dead f) ->
      checki "failure names the dead peer" 1 f.Reliable.dst;
      checki "budget was spent first" 4 f.Reliable.tries

(* ------------------------------------------------------------------ *)
(* recv_timeout                                                        *)
(* ------------------------------------------------------------------ *)

let test_recv_timeout () =
  let cluster : int Mp.envelope Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let eps = Mp.install cluster in
  Cluster.run_app cluster (fun node ->
      let ep = eps.(Node.id node) in
      if Mp.rank ep = 0 then begin
        Engine.delay (Time.us 200);
        Mp.send ep ~dst:1 ~tag:3 33;
        Mp.send ep ~dst:1 ~tag:4 44
      end
      else begin
        (try
           ignore (Mp.recv_timeout ep ~tag:3 ~timeout:Time.zero ());
           Alcotest.fail "non-positive timeout accepted"
         with Invalid_argument _ -> ());
        (match Mp.recv_timeout ep ~tag:3 ~timeout:(Time.us 10) () with
        | None -> ()
        | Some _ -> Alcotest.fail "nothing was sent yet");
        Engine.delay (Time.us 500);
        (* the tag-3 message arrived after the waiter gave up: it must be
           parked in the mailbox, not handed to the dead waiter *)
        (match Mp.try_recv ep ~tag:3 () with
        | Some e -> checki "late message parked in the mailbox" 33 e.Mp.value
        | None -> Alcotest.fail "late message was lost");
        match Mp.recv_timeout ep ~tag:4 ~timeout:(Time.ms 5) () with
        | Some e -> checki "delivery before the deadline" 44 e.Mp.value
        | None -> Alcotest.fail "timed out despite delivery"
      end)

(* ------------------------------------------------------------------ *)
(* Backoff cap                                                         *)
(* ------------------------------------------------------------------ *)

let test_backoff_cap_counted () =
  (* a 3 ms outage against a 200 us RTO ceiling: the retransmission timer
     must clamp (and count the clamps) instead of doubling past the run *)
  let faults =
    {
      Faults.none with
      Faults.link_down = [ { Faults.w_node = 1; w_from = Time.zero; w_upto = Time.ms 3 } ];
    }
  in
  let reliability =
    { Reliable.default with Reliable.timeout = Time.us 50; max_tries = 40; max_rto = Time.us 200 }
  in
  let cluster : int Mp.envelope Cluster.t =
    Cluster.create ~faults ~reliability ~nic_kind:cni ~nodes:2 ()
  in
  let eps = Mp.install cluster in
  let got = ref (-1) in
  Cluster.run_app cluster (fun node ->
      let ep = eps.(Node.id node) in
      if Mp.rank ep = 0 then Mp.send ep ~dst:1 ~tag:1 99
      else got := (Mp.recv ep ~tag:1 ()).Mp.value);
  checki "delivered after the outage" 99 !got;
  match Nic.rel_stats (Node.nic (Cluster.node cluster 0)) with
  | None -> Alcotest.fail "reliability should be on"
  | Some s ->
      checkb "retransmissions carried the frame across" true (s.Nic.retransmits > 0);
      checkb "capped arms were counted" true (s.Nic.rto_capped > 0)

let () =
  Alcotest.run "chaos"
    [
      ( "recovery",
        [
          Alcotest.test_case "dsm recovers from crashes" `Quick test_dsm_recovers;
          Alcotest.test_case "dsm recovers from scrubbed crashes" `Quick
            test_dsm_recovers_scrubbed;
          Alcotest.test_case "chaos metrics deterministic" `Quick test_chaos_deterministic;
          QCheck_alcotest.to_alcotest dsm_qcheck;
          QCheck_alcotest.to_alcotest ring_qcheck;
        ] );
      ( "board state",
        [
          Alcotest.test_case "scrub cycles preserve board memory" `Quick
            test_scrub_cycles_preserve_board_memory;
          Alcotest.test_case "collective parity between crashes" `Quick
            test_collective_parity_between_crashes;
        ] );
      ( "structured failure",
        [
          Alcotest.test_case "watchdog fires on deliberate deadlock" `Quick
            test_watchdog_fires_on_deliberate_deadlock;
          Alcotest.test_case "peer dead mid-send" `Quick test_peer_dead_mid_send;
        ] );
      ( "timeouts",
        [
          Alcotest.test_case "recv_timeout" `Quick test_recv_timeout;
          Alcotest.test_case "backoff cap counted" `Quick test_backoff_cap_counted;
        ] );
    ]
