(* Tests for the persisted perf-baseline subsystem: JSON round-tripping
   through the hand-rolled parser, and the regression verdicts the CI gate
   relies on. *)

module B = Cni_experiments.Bench_baseline

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string

let sub ns words = { B.ns_per_run = ns; minor_words_per_run = words }
let exp_ wall metrics = { B.wall_s = wall; metrics }

let sample () =
  B.make ~label:"BENCH_test" ~quick:true
    ~zero_alloc:[ "trace: 10k emit (disabled)" ]
    ~substrate:
      [
        (B.calibration_name, sub 1_000_000. 0.);
        ("engine: 10k timer events", sub 2_500_000. 400.);
        ("trace: 10k emit (disabled)", sub 30_000. 0.);
        ("heap: 10k push+pop", sub 2_000_000. 30_000.);
      ]
    ~experiments:
      [
        ("fig4", exp_ 1.5 [ ("speedup_32", 13.78); ("hit_ratio", 99.9) ]);
        ("table5", exp_ 0.8 [ ("checksum", 1.25e-3) ]);
        ("weird \"name\"\n", exp_ 0.1 []);
      ]
    ()

(* ------------------------------------------------------------------ *)
(* Round-trip                                                          *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let t = sample () in
  match B.of_json (B.to_json t) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok t' ->
      checki "schema" t.B.schema t'.B.schema;
      checks "label" t.B.label t'.B.label;
      checkb "quick" t.B.quick t'.B.quick;
      check (Alcotest.list Alcotest.string) "zero_alloc" t.B.zero_alloc t'.B.zero_alloc;
      checki "substrate count" (List.length t.B.substrate) (List.length t'.B.substrate);
      checki "experiment count" (List.length t.B.experiments) (List.length t'.B.experiments);
      (* %.17g round-trips doubles exactly *)
      List.iter2
        (fun (n1, (r1 : B.substrate_result)) (n2, (r2 : B.substrate_result)) ->
          checks "substrate name" n1 n2;
          checkb "ns exact" true (r1.B.ns_per_run = r2.B.ns_per_run);
          checkb "words exact" true (r1.B.minor_words_per_run = r2.B.minor_words_per_run))
        t.B.substrate t'.B.substrate;
      let m = List.assoc "fig4" t'.B.experiments in
      checkb "metric exact" true (List.assoc "speedup_32" m.B.metrics = 13.78)

let test_nan_roundtrips_as_null () =
  let t =
    B.make ~label:"n" ~quick:false ~substrate:[ ("s", sub 1. Float.nan) ]
      ~experiments:[ ("e", exp_ 1. [ ("m", Float.nan) ]) ]
      ()
  in
  let json = B.to_json t in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  checkb "nan serialised as null" true (contains json "\"minor_words_per_run\": null");
  match B.of_json json with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok t' ->
      let s = List.assoc "s" t'.B.substrate in
      checkb "nan restored" true (Float.is_nan s.B.minor_words_per_run)

let test_parse_errors () =
  let bad input =
    match B.of_json input with Ok _ -> Alcotest.failf "accepted %S" input | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1, 2]";
  bad "{ \"schema\": 1 }";
  bad "{ \"schema\": 99, \"substrate\": {}, \"experiments\": {} }";
  bad "{ \"schema\": 1, \"substrate\": {}, \"experiments\": {} } trailing"

let test_save_load () =
  let file = Filename.temp_file "bench_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let t = sample () in
      B.save ~file t;
      match B.load ~file with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok t' -> checks "label survives disk" t.B.label t'.B.label);
  match B.load ~file:"/nonexistent/bench.json" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Compare verdicts                                                    *)
(* ------------------------------------------------------------------ *)

let has_regression v needle =
  List.exists
    (fun s ->
      let n = String.length needle and l = String.length s in
      let rec go i = i + n <= l && (String.sub s i n = needle || go (i + 1)) in
      go 0)
    v.B.regressions

let test_identical_is_ok () =
  let t = sample () in
  let v = B.compare ~baseline:t ~current:t () in
  checkb "identical baselines pass" true (B.ok v);
  checki "no regressions" 0 (List.length v.B.regressions)

let test_time_regression_fails () =
  let t = sample () in
  let current =
    {
      t with
      B.substrate =
        List.map
          (fun (n, r) ->
            if n = "engine: 10k timer events" then (n, sub (r.B.ns_per_run *. 1.5) 400.)
            else (n, r))
          t.B.substrate;
    }
  in
  let v = B.compare ~baseline:t ~current () in
  checkb "50% slower fails the 15% gate" false (B.ok v);
  checkb "names the benchmark" true (has_regression v "engine: 10k timer events")

let test_small_wobble_passes () =
  let t = sample () in
  let current =
    {
      t with
      B.substrate = List.map (fun (n, r) -> (n, sub (r.B.ns_per_run *. 1.10) r.B.minor_words_per_run)) t.B.substrate;
    }
  in
  checkb "10% wobble passes" true (B.ok (B.compare ~baseline:t ~current ()))

let test_zero_alloc_contract () =
  let t = sample () in
  let current =
    {
      t with
      B.substrate =
        List.map
          (fun (n, r) ->
            if n = "trace: 10k emit (disabled)" then (n, sub r.B.ns_per_run 5_000.) else (n, r))
          t.B.substrate;
    }
  in
  let v = B.compare ~baseline:t ~current () in
  checkb "allocating trace hot path fails" false (B.ok v);
  checkb "verdict names the contract" true (has_regression v "zero-alloc contract")

let test_alloc_growth_gate () =
  let t = sample () in
  let bump factor =
    {
      t with
      B.substrate =
        List.map
          (fun (n, r) ->
            if n = "heap: 10k push+pop" then (n, sub r.B.ns_per_run (r.B.minor_words_per_run *. factor))
            else (n, r))
          t.B.substrate;
    }
  in
  checkb "1.3x words wobble passes (estimator noise)" true
    (B.ok (B.compare ~baseline:t ~current:(bump 1.3) ()));
  checkb "3x words growth fails (new per-op allocation)" false
    (B.ok (B.compare ~baseline:t ~current:(bump 3.0) ()))

let test_wall_clock_gate_is_loose () =
  let t = sample () in
  let bump factor =
    {
      t with
      B.experiments =
        List.map
          (fun (n, e) -> if n = "fig4" then (n, exp_ (e.B.wall_s *. factor) e.B.metrics) else (n, e))
          t.B.experiments;
    }
  in
  (* single-shot wall-clocks breathe with machine load: even +80% must
     pass — the gate is a backstop against catastrophic blowups only *)
  checkb "80% wall wobble passes" true (B.ok (B.compare ~baseline:t ~current:(bump 1.8) ()));
  let v = B.compare ~baseline:t ~current:(bump 2.5) () in
  checkb "2.5x wall-clock fails" false (B.ok v);
  checkb "names the experiment" true (has_regression v "fig4")

let test_metric_drift_fails () =
  let t = sample () in
  let current =
    {
      t with
      B.experiments =
        List.map
          (fun (n, e) ->
            if n = "fig4" then (n, exp_ e.B.wall_s [ ("speedup_32", 13.0); ("hit_ratio", 99.9) ])
            else (n, e))
          t.B.experiments;
    }
  in
  let v = B.compare ~baseline:t ~current () in
  checkb "deterministic metric drift fails" false (B.ok v);
  checkb "verdict names the metric" true (has_regression v "speedup_32")

let test_calibration_rescales () =
  let t = sample () in
  (* the current machine is 2x slower across the board, including the
     calibration anchor: nothing actually regressed *)
  let current =
    {
      t with
      B.substrate = List.map (fun (n, r) -> (n, sub (r.B.ns_per_run *. 2.) r.B.minor_words_per_run)) t.B.substrate;
      B.experiments = List.map (fun (n, e) -> (n, { e with B.wall_s = e.B.wall_s *. 2. })) t.B.experiments;
    }
  in
  let v = B.compare ~baseline:t ~current () in
  checkb "uniformly slower machine passes via calibration" true (B.ok v);
  checkb "rescale noted" true
    (List.exists (fun s -> String.length s > 0) v.B.notes)

let test_quick_mismatch_skips_experiments () =
  let t = sample () in
  let current =
    {
      t with
      B.quick = false;
      B.experiments = [ ("fig4", exp_ 99.0 [ ("speedup_32", 0.0) ]) ];
    }
  in
  (* wildly different wall-clock and metrics, but modes differ: not compared *)
  let v = B.compare ~baseline:t ~current () in
  checkb "mode mismatch does not fail" true (B.ok v);
  checkb "mode mismatch noted" true (v.B.notes <> [])

let test_missing_entries_noted_not_failed () =
  let t = sample () in
  let current = { t with B.substrate = [ (B.calibration_name, sub 1_000_000. 0.) ]; B.experiments = [] } in
  let v = B.compare ~baseline:t ~current () in
  checkb "missing entries are notes, not regressions" true (B.ok v);
  checkb "notes mention the gaps" true (List.length v.B.notes >= 3)

let () =
  Alcotest.run "bench_baseline"
    [
      ( "serialisation",
        [
          Alcotest.test_case "to_json/of_json round-trip" `Quick test_roundtrip;
          Alcotest.test_case "nan becomes null and back" `Quick test_nan_roundtrips_as_null;
          Alcotest.test_case "malformed input rejected" `Quick test_parse_errors;
          Alcotest.test_case "save/load via disk" `Quick test_save_load;
        ] );
      ( "compare",
        [
          Alcotest.test_case "identical run passes" `Quick test_identical_is_ok;
          Alcotest.test_case "time regression fails" `Quick test_time_regression_fails;
          Alcotest.test_case "small wobble passes" `Quick test_small_wobble_passes;
          Alcotest.test_case "zero-alloc contract enforced" `Quick test_zero_alloc_contract;
          Alcotest.test_case "allocation growth gate" `Quick test_alloc_growth_gate;
          Alcotest.test_case "wall-clock gate is loose" `Quick test_wall_clock_gate_is_loose;
          Alcotest.test_case "deterministic metric drift fails" `Quick test_metric_drift_fails;
          Alcotest.test_case "calibration rescales machine speed" `Quick test_calibration_rescales;
          Alcotest.test_case "quick-mode mismatch skips experiments" `Quick
            test_quick_mismatch_skips_experiments;
          Alcotest.test_case "missing entries are notes" `Quick test_missing_entries_noted_not_failed;
        ] );
    ]
